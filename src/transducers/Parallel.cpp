//===- transducers/Parallel.cpp - Worker contexts & parallel driver -------===//

#include "transducers/Parallel.h"

#include <atomic>
#include <cassert>
#include <exception>
#include <mutex>
#include <thread>

using namespace fast;

unsigned fast::hardwareThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

WorkerContext::WorkerContext(Session &Base,
                             const obs::ProvenanceStore *ProvSnapshot)
    : BaseS(Base), Work(Session::OverlayTag{}, Base),
      ProvSnapshot(ProvSnapshot) {
  assert(Base.frozen() && "WorkerContext requires a frozen base session");
  engine::SessionEngine &BaseEngine = Base.engine();
  engine::SessionEngine &WorkEngine = Work.engine();

  // Budgets apply per construction, so a copy (not a share) is right —
  // except the intra-construction lane count, which is zeroed: tasks of a
  // parallel run are themselves the parallelism, and nesting lane pools
  // inside worker threads would oversubscribe the machine.
  WorkEngine.Limits = BaseEngine.Limits;
  WorkEngine.Limits.ParallelExploration = 0;

  // Detach the worker's guard cache from any verdict-fact cache (the
  // engine constructor wires its own by default).  Deliberately NOT the
  // base session's: the facts themselves would be sound, but which task
  // pays for a verdict — and with it every merged cache-hit counter —
  // would depend on scheduling, breaking the guarantee that -j 1 and
  // -j N merge identical counters.  The worker's own cache is detached
  // too, so a pooled context cannot carry fingerprint-keyed verdicts
  // across reset() (the term-identity memos cover everything within one
  // task; fingerprints only add cross-factory reach the task never needs).
  WorkEngine.Guards.setSharedVerdicts(nullptr);

  // Same anchor/rule id space as the base, own Fired shard.  Seed from
  // the runner's main-thread snapshot when given: this constructor runs
  // on a worker thread, and the base store's Fired counters are being
  // written by sibling tasks' merges.
  WorkEngine.Prov.adoptSharedFrom(ProvSnapshot ? *ProvSnapshot
                                               : BaseEngine.Prov);

  // Slow-query admission uses the base's capacity so the merged worst-K
  // set matches what a sequential run would have retained.
  WorkEngine.Trace.slowQueries().setCapacity(
      BaseEngine.Trace.slowQueries().capacity());

  // Trace events are order-sensitive: buffer them on the base timebase
  // for replay at the join point.  Without a base sink nothing buffers
  // and the worker tracer stays inactive (one branch per hook).
  if (BaseEngine.Trace.active()) {
    auto Sink = std::make_unique<obs::BufferTraceSink>();
    Buffer = Sink.get();
    WorkEngine.Trace.alignEpochTo(BaseEngine.Trace);
    WorkEngine.Trace.setSink(std::move(Sink));
  }
}

void WorkerContext::reset() {
  assert(!Buffer && "pooled reuse requires an untraced context");
  engine::SessionEngine &WorkEngine = Work.engine();
  // Restore *observational* freshness: the next task must compute exactly
  // what it would in a brand-new context — same query counts, same cache
  // hits, same term ids, same constructed automata — no matter which
  // thread runs it or what ran before.  Only the Z3 context (the ~ms
  // per-task constant pooling exists to kill) survives.
  //
  // Order matters: the solver's translation memo and the guard cache's
  // memos/trie are keyed by TermRefs into the overlay factory, so they
  // are dropped before resetOverlay() frees those terms.
  Work.Solv.resetForReuse();
  WorkEngine.Guards.clearMemos();
  Work.Terms.resetOverlay();
  Work.Trees.resetOverlay();
  Work.Outputs.resetOverlay();
  WorkEngine.Stats.reset();
  Work.Solv.resetStats();
  WorkEngine.Trace.slowQueries().clear();
  // Re-seed the provenance shard (same tables, Fired counts zeroed), so a
  // previous task's firings — merged or discarded — never leak into the
  // next task's coverage merge.  From the snapshot, never the live store:
  // reset() runs on a worker thread while sibling merges write Fired.
  WorkEngine.Prov.adoptSharedFrom(ProvSnapshot ? *ProvSnapshot
                                               : BaseS.engine().Prov);
}

void WorkerContext::mergeInto(Session &Base) {
  Base.stats().mergeFrom(Work.stats());
  Base.Solv.mergeStatsFrom(Work.Solv);
  Base.tracer().slowQueries().mergeFrom(Work.tracer().slowQueries());
  Base.provenance().mergeCoverageFrom(Work.provenance());
}

void WorkerContext::replayTraceInto(obs::Tracer &BaseTrace, double Lane) {
  if (!Buffer)
    return;
  for (const obs::BufferTraceSink::OwnedEvent &E : Buffer->events())
    BaseTrace.emitForeign(
        {E.Phase, E.Name, E.Category, E.TsUs, E.DurUs, E.Attrs, Lane});
}

ParallelRunner::ParallelRunner(Session &Base, unsigned Threads)
    : BaseS(Base), NumThreads(Threads == 0 ? hardwareThreads() : Threads) {
  // Materialize the engine before any worker thread exists — worker
  // contexts read it, and SessionEngine::of installs on first use.
  Base.engine();
  if (!Base.frozen())
    Base.freeze();
  // Snapshot the provenance tables while still single-threaded: worker
  // contexts constructed mid-run must not read the live base store,
  // whose Fired counters finishing tasks write under the merge mutex.
  ProvSnapshot.adoptSharedFrom(Base.engine().Prov);
}

std::vector<std::unique_ptr<WorkerContext>>
ParallelRunner::run(size_t NumTasks,
                    const std::function<void(size_t, WorkerContext &)> &Fn,
                    bool RetainWorkers) {
  const bool KeepContexts =
      RetainWorkers || BaseS.engine().Trace.active();
  std::vector<std::unique_ptr<WorkerContext>> Retained(
      KeepContexts ? NumTasks : 0);
  std::vector<std::exception_ptr> Errors(NumTasks);
  std::atomic<size_t> Next{0};
  std::atomic<size_t> Built{0};
  std::mutex MergeMutex;

  auto RunTasks = [&] {
    // Contexts are built lazily, inside the claim loop: a pool thread
    // that never claims a task never constructs one.
    std::unique_ptr<WorkerContext> Pooled;
    for (size_t Task = Next.fetch_add(1); Task < NumTasks;
         Task = Next.fetch_add(1)) {
      std::unique_ptr<WorkerContext> Worker;
      if (KeepContexts) {
        // A fresh context per *task* (not per thread) keeps retained
        // results and replayed trace buffers independent of scheduling:
        // -j 1 and -j N stay byte-identical.
        Worker = std::make_unique<WorkerContext>(BaseS, &ProvSnapshot);
        Built.fetch_add(1, std::memory_order_relaxed);
      } else if (!Pooled) {
        Pooled = std::make_unique<WorkerContext>(BaseS, &ProvSnapshot);
        Built.fetch_add(1, std::memory_order_relaxed);
      }
      WorkerContext &Ctx = Worker ? *Worker : *Pooled;
      try {
        Fn(Task, Ctx);
        std::lock_guard<std::mutex> Lock(MergeMutex);
        Ctx.mergeInto(BaseS);
      } catch (...) {
        Errors[Task] = std::current_exception();
      }
      if (KeepContexts)
        Retained[Task] = std::move(Worker);
      else
        // Whether the task merged or threw, strip its per-task state so
        // nothing leaks into the next task this thread claims.
        Pooled->reset();
    }
  };

  unsigned Pool = static_cast<unsigned>(
      std::min<size_t>(NumThreads, NumTasks == 0 ? 1 : NumTasks));
  if (Pool <= 1) {
    RunTasks();
  } else {
    std::vector<std::thread> Threads;
    Threads.reserve(Pool);
    for (unsigned I = 0; I < Pool; ++I)
      Threads.emplace_back(RunTasks);
    for (std::thread &T : Threads)
      T.join();
  }

  ContextsBuilt = Built.load(std::memory_order_relaxed);
  assert(ContextsBuilt <= NumTasks &&
         "a context was constructed for a never-claimed task");
  assert((KeepContexts || ContextsBuilt <= Pool) &&
         "pooled run built more contexts than pool threads");

  // Join point: replay order-sensitive trace buffers in task order, so
  // the merged trace file is identical across schedules.  A task that
  // threw had its whole scratch state discarded (mergeInto never ran),
  // so its buffer is skipped too — the trace stream never shows spans
  // whose counters were not merged.
  obs::Tracer &BaseTrace = BaseS.tracer();
  if (BaseTrace.active())
    for (size_t Task = 0; Task < Retained.size(); ++Task)
      if (Retained[Task] && !Errors[Task])
        Retained[Task]->replayTraceInto(BaseTrace,
                                        /*Lane=*/2 + static_cast<double>(Task));

  for (size_t Task = 0; Task < NumTasks; ++Task)
    if (Errors[Task])
      std::rethrow_exception(Errors[Task]);

  if (!RetainWorkers)
    Retained.clear();
  return Retained;
}
