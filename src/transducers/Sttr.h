//===- transducers/Sttr.h - Symbolic tree transducers w/ lookahead -*- C++ -*-===//
//
// Part of the fast-transducers project (see support/Hashing.h).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic Tree Transducers with Regular lookahead (Definition 5): rules
/// (q, f, phi, lbar, t) where t is an output transformer (Output.h) and
/// lbar assigns each input subtree a conjunction of regular constraints.
///
/// Representation note: the paper's lookahead references the transducer's
/// own state set Q, interpreted through the domain automaton d(S).  We
/// instead let each STTR carry an explicit *lookahead STA* and have rules
/// reference its states.  This is equivalent (the domain automaton of
/// Definition 6 is built by combining the lookahead STA with one domain
/// state per transducer state) and matches both the Fast surface language,
/// where `given (p y)` references `lang` definitions, and the composition
/// algorithm, where the composed lookahead constraints are pre-image states
/// p.q that are not transduction states of the composed machine.
///
//===----------------------------------------------------------------------===//

#ifndef FAST_TRANSDUCERS_STTR_H
#define FAST_TRANSDUCERS_STTR_H

#include "automata/Sta.h"
#include "smt/Solver.h"
#include "transducers/Output.h"

#include <map>
#include <optional>

namespace fast {

/// One rule (q, f, phi, lbar, t) of an STTR.
struct SttrRule {
  unsigned State;
  unsigned CtorId;
  TermRef Guard;
  /// One conjunction of lookahead-STA states per child; size == rank(f).
  std::vector<StateSet> Lookahead;
  /// The output transformer.
  OutputRef Out;
};

/// A symbolic tree transducer with regular lookahead.
class Sttr {
public:
  /// Creates an STTR over \p Sig with an initially empty lookahead STA.
  explicit Sttr(SignatureRef Sig)
      : Sig(std::move(Sig)), LookaheadSta(std::make_shared<Sta>(this->Sig)) {}

  const SignatureRef &signature() const { return Sig; }

  unsigned addState(std::string Name = "");
  unsigned numStates() const { return static_cast<unsigned>(StateNames.size()); }
  const std::string &stateName(unsigned State) const { return StateNames[State]; }

  unsigned startState() const { return Start; }
  void setStartState(unsigned State) { Start = State; }

  /// The lookahead STA whose states rule lookaheads reference.  Mutable
  /// while the transducer is under construction.
  Sta &lookahead() { return *LookaheadSta; }
  const Sta &lookahead() const { return *LookaheadSta; }
  const std::shared_ptr<Sta> &lookaheadPtr() { return LookaheadSta; }

  /// Adds rule (State, CtorId, Guard, Lookahead, Out).
  void addRule(unsigned State, unsigned CtorId, TermRef Guard,
               std::vector<StateSet> Lookahead, OutputRef Out);

  const std::vector<SttrRule> &rules() const { return Rules; }
  const SttrRule &rule(unsigned Index) const { return Rules[Index]; }
  size_t numRules() const { return Rules.size(); }
  const std::vector<unsigned> &rulesFrom(unsigned State, unsigned CtorId) const;

  /// Returns the identity state (copies input verbatim), creating it and
  /// its rules on first use.  Label expressions are built in \p F.
  unsigned ensureIdentityState(TermFactory &F, OutputFactory &Outputs);

  /// True if every rule's output uses each y_i at most once (Definition 5).
  bool isLinear() const;

  /// Sufficient, decidable condition for single-valuedness (Definition 9):
  /// no two distinct rules from the same state are simultaneously enabled.
  /// Guard overlap is checked with \p S; lookahead overlap is checked by
  /// language-intersection emptiness.
  bool isDeterministic(Solver &S) const;

  /// Multi-line dump for debugging and golden tests.
  std::string str() const;

  /// Provenance side table over the *transduction* states/rules (the
  /// lookahead STA carries its own); nullptr unless recorded.
  obs::StateProvenance *provenance() const { return Prov.get(); }
  const std::shared_ptr<obs::StateProvenance> &provenancePtr() const {
    return Prov;
  }
  obs::StateProvenance &provenanceRW();
  void setProvenance(std::shared_ptr<obs::StateProvenance> P) {
    Prov = std::move(P);
  }

private:
  SignatureRef Sig;
  std::vector<std::string> StateNames;
  std::vector<SttrRule> Rules;
  std::map<std::pair<unsigned, unsigned>, std::vector<unsigned>> RulesByStateCtor;
  std::shared_ptr<Sta> LookaheadSta;
  unsigned Start = 0;
  std::optional<unsigned> IdentityState;
  std::shared_ptr<obs::StateProvenance> Prov;
};

} // namespace fast

#endif // FAST_TRANSDUCERS_STTR_H
