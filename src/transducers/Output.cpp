//===- transducers/Output.cpp - STTR output tree transformers -------------===//

#include "transducers/Output.h"

#include "support/Freeze.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cassert>

using namespace fast;

Output::Output(OutputKind Kind, unsigned State, unsigned ChildIndex,
               unsigned CtorId, std::vector<TermRef> LabelExprs,
               std::vector<OutputRef> Children)
    : Kind(Kind), State(State), ChildIndex(ChildIndex), CtorId(CtorId),
      LabelExprs(std::move(LabelExprs)), Children(std::move(Children)) {
  std::size_t Seed = static_cast<std::size_t>(Kind);
  hashCombineValue(Seed, State);
  hashCombineValue(Seed, ChildIndex);
  hashCombineValue(Seed, CtorId);
  for (TermRef E : this->LabelExprs)
    hashCombineValue(Seed, E->id());
  for (OutputRef C : this->Children)
    hashCombineValue(Seed, C);
  Hash = Seed;
}

std::string
Output::str(const std::function<std::string(unsigned)> &StateName,
            const std::function<std::string(unsigned)> &CtorName) const {
  if (isState())
    return StateName(State) + "(y" + std::to_string(ChildIndex + 1) + ")";
  std::string Result = CtorName(CtorId);
  Result += '[';
  for (size_t I = 0; I < LabelExprs.size(); ++I) {
    if (I != 0)
      Result += ", ";
    Result += LabelExprs[I]->str();
  }
  Result += ']';
  if (!Children.empty()) {
    Result += '(';
    for (size_t I = 0; I < Children.size(); ++I) {
      if (I != 0)
        Result += ", ";
      Result += Children[I]->str(StateName, CtorName);
    }
    Result += ')';
  }
  return Result;
}

bool OutputFactory::NodeEq::operator()(const Output *A, const Output *B) const {
  if (A->kind() != B->kind())
    return false;
  if (A->isState())
    return A->state() == B->state() && A->childIndex() == B->childIndex();
  if (A->ctorId() != B->ctorId())
    return false;
  auto AE = A->labelExprs(), BE = B->labelExprs();
  if (!std::equal(AE.begin(), AE.end(), BE.begin(), BE.end()))
    return false;
  auto AC = A->children(), BC = B->children();
  return std::equal(AC.begin(), AC.end(), BC.begin(), BC.end());
}

OutputFactory::OutputFactory(const OutputFactory *Base) : Base(Base) {
  assert(Base->frozen() && "overlay requires a frozen base factory");
}

const Output *OutputFactory::findInterned(const Output *Probe) const {
  if (Base)
    if (const Output *Hit = Base->findInterned(Probe))
      return Hit;
  auto It = Interned.find(const_cast<Output *>(Probe));
  return It == Interned.end() ? nullptr : *It;
}

OutputRef OutputFactory::internNode(std::unique_ptr<Output> Node) {
  // The base chain is frozen, so probing it is a lock-free read shared by
  // every overlay; only local misses touch this factory's tables.
  if (Base)
    if (const Output *Hit = Base->findInterned(Node.get()))
      return Hit;
  auto It = Interned.find(Node.get());
  if (It != Interned.end())
    return *It;
  if (Frozen)
    throw FrozenFactoryError("OutputFactory");
  Output *Raw = Node.get();
  Nodes.push_back(std::move(Node));
  Interned.insert(Raw);
  return Raw;
}

OutputRef OutputFactory::mkState(unsigned State, unsigned ChildIndex) {
  return internNode(std::unique_ptr<Output>(
      new Output(OutputKind::State, State, ChildIndex, 0, {}, {})));
}

OutputRef OutputFactory::mkCons(unsigned CtorId,
                                std::vector<TermRef> LabelExprs,
                                std::vector<OutputRef> Children) {
  return internNode(std::unique_ptr<Output>(
      new Output(OutputKind::Cons, 0, 0, CtorId, std::move(LabelExprs),
                 std::move(Children))));
}

std::vector<unsigned> fast::statesAppliedTo(OutputRef Out, unsigned ChildIndex) {
  std::vector<unsigned> States;
  auto Rec = [&](auto &&Self, OutputRef Node) -> void {
    if (Node->isState()) {
      if (Node->childIndex() == ChildIndex)
        States.push_back(Node->state());
      return;
    }
    for (OutputRef Child : Node->children())
      Self(Self, Child);
  };
  Rec(Rec, Out);
  std::sort(States.begin(), States.end());
  States.erase(std::unique(States.begin(), States.end()), States.end());
  return States;
}

bool fast::isLinearOutput(OutputRef Out, unsigned Rank) {
  std::vector<unsigned> Uses(Rank, 0);
  bool Linear = true;
  auto Rec = [&](auto &&Self, OutputRef Node) -> void {
    if (!Linear)
      return;
    if (Node->isState()) {
      assert(Node->childIndex() < Rank && "output mentions y out of range");
      if (++Uses[Node->childIndex()] > 1)
        Linear = false;
      return;
    }
    for (OutputRef Child : Node->children())
      Self(Self, Child);
  };
  Rec(Rec, Out);
  return Linear;
}
