//===- transducers/Compose.h - STTR composition (Section 4) -----*- C++ -*-===//
//
// Part of the fast-transducers project (see support/Hashing.h).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The composition algorithm for STTRs (Section 4): given S and T over the
/// same tree type, builds S.T with T_{S.T} = T_S . T_T.  The construction
/// is the paper's least-fixpoint over pair states p.q with the Compose /
/// Reduce / Look procedures, performed modulo the label theory: rewrite
/// steps of T are carried out on S's *symbolic* outputs, with T's guards
/// applied to S's output label expressions by substitution, and every
/// accumulated constraint checked for satisfiability so dead reductions
/// are pruned eagerly.
///
/// Correctness (Theorem 4): T_{S.T} always over-approximates T_T . T_S,
/// and is exact when S is single-valued or T is linear.  composeSttr
/// reports which precondition held so callers can surface a warning.
///
/// The same Look machinery also yields the pre-image computation
/// (`pre-image t l` of Section 3.5): an STA for the inputs on which t can
/// produce an output inside l.
///
//===----------------------------------------------------------------------===//

#ifndef FAST_TRANSDUCERS_COMPOSE_H
#define FAST_TRANSDUCERS_COMPOSE_H

#include "transducers/Domain.h"

namespace fast {

/// Result of a composition: the composed transducer plus the Theorem 4
/// precondition diagnosis.
struct ComposeResult {
  std::shared_ptr<Sttr> Composed;
  /// True if S was (syntactically) deterministic, hence single-valued.
  bool FirstSingleValued = false;
  /// True if T was linear.
  bool SecondLinear = false;

  /// Theorem 4 guarantees exactness under either precondition.
  bool isExact() const { return FirstSingleValued || SecondLinear; }
};

/// Composes \p S with \p T (apply S first, then T).
///
/// With \p SimplifyLookahead (the default), provably universal lookahead
/// constraints introduced by the construction are pruned from the result;
/// the ablation benchmark turns this off to measure its effect on
/// repeated composition.
ComposeResult composeSttr(Solver &Solv, OutputFactory &Outputs, const Sttr &S,
                          const Sttr &T, bool SimplifyLookahead = true);

/// The language of inputs on which \p T can produce an output in \p L.
TreeLanguage preImageLanguage(Solver &Solv, const Sttr &T,
                              const TreeLanguage &L);

} // namespace fast

#endif // FAST_TRANSDUCERS_COMPOSE_H
