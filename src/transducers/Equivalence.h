//===- transducers/Equivalence.h - STTR equivalence testing -----*- C++ -*-===//
//
// Part of the fast-transducers project (see support/Hashing.h).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Equivalence checking for STTRs.  Full equivalence of single-valued
/// STTRs is an open problem the paper states explicitly (Section 7), so
/// this module provides what is soundly available:
///
///  - domain equivalence, which *is* decidable (domains are STAs);
///  - behavioural refutation: a randomized search for an input on which
///    the two transducers produce different output sets, seeded both with
///    random trees and with witnesses of the domain difference.
///
/// `checkEquivalence` therefore returns three-valued answers: a concrete
/// counterexample (definitely inequivalent), `Inequivalent` via domain
/// reasoning, or `ProbablyEquivalent` (no difference found — not a
/// proof).
///
//===----------------------------------------------------------------------===//

#ifndef FAST_TRANSDUCERS_EQUIVALENCE_H
#define FAST_TRANSDUCERS_EQUIVALENCE_H

#include "automata/StaOps.h"
#include "transducers/Ops.h"
#include "transducers/Session.h"

namespace fast {

/// Decides whether dom(T1) == dom(T2) (both are regular tree languages).
bool haveEquivalentDomains(Solver &Solv, const Sttr &T1, const Sttr &T2);

/// Outcome of an equivalence check.
struct EquivalenceResult {
  enum class Verdict {
    /// A concrete input with different output sets was found.
    Inequivalent,
    /// No difference found by domain analysis or sampling; NOT a proof
    /// (single-valued STTR equivalence is open, Section 7).
    ProbablyEquivalent,
  };
  Verdict Outcome = Verdict::ProbablyEquivalent;
  /// For Inequivalent: an input on which the output sets differ.
  TreeRef Counterexample = nullptr;
  /// When the counterexample came from the decidable domain comparison and
  /// provenance recording is enabled, the derivation-carrying witness for
  /// the domain-difference language (explains *why* one side accepts).
  std::optional<ExplainedWitness> Explanation;
};

/// Searches for a behavioural difference between \p T1 and \p T2:
/// first a decidable domain comparison (a domain-difference witness is a
/// guaranteed counterexample), then \p Samples seeded random inputs.
EquivalenceResult checkEquivalence(Session &S, const Sttr &T1, const Sttr &T2,
                                   unsigned Samples = 200, unsigned Seed = 1);

} // namespace fast

#endif // FAST_TRANSDUCERS_EQUIVALENCE_H
