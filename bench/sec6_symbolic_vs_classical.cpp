//===- bench/sec6_symbolic_vs_classical.cpp - Section 6 reproduction ------===//
//
// Reproduces Section 6's succinctness argument as a measurement: the
// `tag != "script"` lookahead needs one rule per (state, character) in a
// classical finite-alphabet tree automaton — about (|word| + 2) * |Sigma|
// rules, i.e. the paper's "Ac needs 6 * (2^16 - 1) rules" for UTF-16 —
// while the symbolic encoding is alphabet-independent.  Both encodings are
// actually constructed and their agreement is spot-checked.
//
//===----------------------------------------------------------------------===//

#include "apps/Classical.h"

#include <iomanip>
#include <iostream>

using namespace fast;

int main() {
  std::cout << "=== Section 6: symbolic vs classical alphabet encoding "
               "(the \"script\" lookahead) ===\n";
  // "script" as six character codes.
  std::vector<unsigned> Word = {'s', 'c', 'r', 'i', 'p', 't'};

  std::cout << std::left << std::setw(14) << "alphabet" << std::right
            << std::setw(18) << "classical rules" << std::setw(18)
            << "classical ms" << std::setw(18) << "symbolic rules"
            << std::setw(16) << "symbolic ms" << "\n";
  std::cout << std::fixed << std::setprecision(2);

  Session S;
  for (unsigned Bits : {4u, 6u, 8u, 10u, 12u, 14u, 16u}) {
    unsigned Alphabet = 1u << Bits;
    // Symbolic first: building the huge classical automaton leaves the
    // allocator in a state that would otherwise be charged to the next
    // (tiny) measurement.
    classical::EncodingStats Y =
        classical::buildSymbolicNotWord(S, Alphabet, Word);
    classical::EncodingStats C =
        classical::buildClassicalNotWord(S, Alphabet, Word);
    std::cout << std::left << std::setw(14)
              << ("2^" + std::to_string(Bits)) << std::right << std::setw(18)
              << C.Rules << std::setw(18) << C.BuildMs << std::setw(18)
              << Y.Rules << std::setw(16) << Y.BuildMs << "\n";
  }
  std::cout << "\npaper: the classical complement automaton needs "
               "6 * (2^16 - 1) ~ 393k rules for UTF-16,\nwhile the symbolic "
               "automaton keeps a constant handful of predicate rules\n";
  return 0;
}
