//===- bench/sec51_sanitizer.cpp - Section 5.1 reproduction ---------------===//
//
// Reproduces the Section 5.1 evaluation: sanitize 10 HTML pages ranging
// from 20 KB (the paper's Bing page) to 409 KB (Facebook) with (a) the
// Fast-composed sanitizer pipeline (remScript . esc, restricted to
// well-formed trees, traversing the input once) and (b) the monolithic
// hand-written baseline standing in for HTML Purifier.  The paper's claim:
// "for speed, the Fast-based sanitizer is comparable"; outputs are also
// cross-checked for equality.
//
//===----------------------------------------------------------------------===//

#include "apps/Html.h"
#include "transducers/Run.h"

#include <chrono>
#include <cmath>
#include <iomanip>
#include <iostream>

using namespace fast;

namespace {

double msSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

} // namespace

int main() {
  std::cout << "=== Section 5.1: HTML sanitizer throughput, composed "
               "pipeline vs monolithic baseline ===\n";
  Session S;
  html::Sanitizer Sani = html::buildSanitizer(S, /*FixBug=*/true);

  // Ten pages, log-interpolated between the paper's extremes.
  std::vector<size_t> Sizes;
  for (unsigned I = 0; I < 10; ++I) {
    double T = I / 9.0;
    Sizes.push_back(static_cast<size_t>(20480.0 *
                                        std::pow(409.0 / 20.0, T)));
  }

  std::cout << std::left << std::setw(12) << "page (KB)" << std::right
            << std::setw(12) << "nodes" << std::setw(14) << "fast (ms)"
            << std::setw(16) << "baseline (ms)" << std::setw(12) << "ratio"
            << std::setw(10) << "equal" << "\n";
  std::cout << std::fixed << std::setprecision(2);

  double TotalFast = 0, TotalBase = 0;
  bool AllEqual = true;
  for (unsigned I = 0; I < Sizes.size(); ++I) {
    std::string Page = html::generatePage(Sizes[I], /*Seed=*/100 + I);
    std::string Error;
    TreeRef Doc = html::parseHtml(S, Sani.Sig, Page, Error);
    if (!Doc) {
      std::cerr << "page generation bug: " << Error << "\n";
      return 1;
    }

    auto T0 = std::chrono::steady_clock::now();
    SttrRunner Runner(*Sani.Sani, S.Trees);
    std::vector<TreeRef> Out = Runner.run(Doc);
    double FastMs = msSince(T0);

    auto T1 = std::chrono::steady_clock::now();
    TreeRef BaseOut = html::monolithicSanitize(S, Sani.Sig, Doc);
    double BaseMs = msSince(T1);

    bool Equal = Out.size() == 1 && Out.front() == BaseOut;
    AllEqual &= Equal;
    TotalFast += FastMs;
    TotalBase += BaseMs;
    std::cout << std::left << std::setw(12)
              << (std::to_string(Page.size() / 1024) + " KB") << std::right
              << std::setw(12) << Doc->size() << std::setw(14) << FastMs
              << std::setw(16) << BaseMs << std::setw(12)
              << (BaseMs > 0 ? FastMs / BaseMs : 0.0) << std::setw(10)
              << (Equal ? "yes" : "NO") << "\n";
  }
  std::cout << "\ntotal: fast " << TotalFast << " ms, baseline " << TotalBase
            << " ms (ratio " << TotalFast / TotalBase << "); outputs "
            << (AllEqual ? "all equal" : "DIFFER") << "\n";
  std::cout << "paper: \"for speed, the Fast-based sanitizer is comparable "
               "to HTML Purify\";\nFast source: ~50 lines (paper: 200) vs "
               "the monolithic library's thousands\n";

  // Part 2: the composition claim.  "Each sanitization routine can be
  // written as a single function and all such routines can be composed,
  // preserving the property of traversing the input HTML only once."
  std::cout << "\n--- multi-stage pipeline: k separate passes vs one fused "
               "traversal ---\n";
  html::SanitizerPipeline P = html::buildSanitizerPipeline(S);
  std::cout << std::left << std::setw(12) << "page (KB)" << std::right
            << std::setw(18) << "4 passes (ms)" << std::setw(16)
            << "fused (ms)" << std::setw(12) << "speedup" << std::setw(10)
            << "equal" << "\n";
  for (size_t Size : {64u << 10, 256u << 10}) {
    std::string Page = html::generatePage(Size, /*Seed=*/77);
    std::string Error;
    TreeRef Doc = html::parseHtml(S, P.Sig, Page, Error);
    if (!Doc) {
      std::cerr << "page generation bug: " << Error << "\n";
      return 1;
    }
    auto T0 = std::chrono::steady_clock::now();
    TreeRef Current = Doc;
    for (const auto &Stage : P.Stages) {
      SttrRunner Runner(*Stage, S.Trees);
      Current = Runner.run(Current).front();
    }
    double PassesMs = msSince(T0);
    auto T1 = std::chrono::steady_clock::now();
    SttrRunner Fused(*P.Composed, S.Trees);
    TreeRef FusedOut = Fused.run(Doc).front();
    double FusedMs = msSince(T1);
    std::cout << std::left << std::setw(12)
              << (std::to_string(Page.size() / 1024) + " KB") << std::right
              << std::setw(18) << PassesMs << std::setw(16) << FusedMs
              << std::setw(11) << PassesMs / FusedMs << "x" << std::setw(9)
              << (Current == FusedOut ? "yes" : "NO") << "\n";
  }
  return 0;
}
