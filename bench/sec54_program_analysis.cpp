//===- bench/sec54_program_analysis.cpp - Section 5.4 reproduction --------===//
//
// Reproduces the Section 5.4 analysis timing: the Figure 8 program —
// compose map_caesar and filter_ev into comp, square it into comp2,
// restrict its output to non-empty lists, and decide emptiness — which
// proves map;filter;map;filter deletes every element.  The paper: "the
// whole analysis can be done in less than 10 ms".
//
//===----------------------------------------------------------------------===//

#include "apps/Deforestation.h"

#include <chrono>
#include <iomanip>
#include <iostream>

using namespace fast;

namespace {

double msSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

} // namespace

int main() {
  std::cout << "=== Section 5.4: static analysis of the Figure 8 "
               "functional program ===\n";
  std::cout << std::fixed << std::setprecision(2);

  // Warm and measured passes: the first pass pays Z3 context setup.
  for (int Round = 0; Round < 2; ++Round) {
    Session S;
    SignatureRef Sig = defo::listSignature();
    auto TAll = std::chrono::steady_clock::now();

    auto T0 = std::chrono::steady_clock::now();
    std::shared_ptr<Sttr> Map = defo::makeMapCaesar(S, Sig);
    std::shared_ptr<Sttr> Filter = defo::makeFilterEven(S, Sig);
    std::shared_ptr<Sttr> Comp =
        composeSttr(S.Solv, S.Outputs, *Map, *Filter).Composed;
    double CompMs = msSince(T0);

    auto T1 = std::chrono::steady_clock::now();
    std::shared_ptr<Sttr> Comp2 =
        composeSttr(S.Solv, S.Outputs, *Comp, *Comp).Composed;
    double Comp2Ms = msSince(T1);

    // not_emp_list = { cons(x) }.
    auto A = std::make_shared<Sta>(Sig);
    unsigned Q = A->addState("not_emp_list");
    A->addRule(Q, *Sig->findConstructor("cons"), S.Terms.trueTerm(), {{}});
    TreeLanguage NonEmpty(std::move(A), Q);

    auto T2 = std::chrono::steady_clock::now();
    ComposeResult Restr = restrictOutput(S.Solv, S.Outputs, *Comp2, NonEmpty);
    double RestrMs = msSince(T2);

    auto T3 = std::chrono::steady_clock::now();
    bool Empty = isEmptyTransducer(S.Solv, *Restr.Composed);
    double EmptyMs = msSince(T3);
    double TotalMs = msSince(TAll);

    std::cout << (Round == 0 ? "cold" : "warm") << ": compose comp "
              << CompMs << " ms; compose comp2 " << Comp2Ms
              << " ms; restrict-out " << RestrMs << " ms; emptiness "
              << EmptyMs << " ms; TOTAL " << TotalMs << " ms\n";
    if (!Empty) {
      std::cerr << "ERROR: analysis disproved the paper's property\n";
      return 1;
    }
  }
  std::cout << "property verified: comp2 never outputs a non-empty list "
               "(paper: whole analysis < 10 ms)\n";
  return 0;
}
