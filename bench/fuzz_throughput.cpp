//===- bench/fuzz_throughput.cpp - Differential-harness throughput --------===//
//
// Measures the cost structure of one fastfuzz round: instance generation,
// each oracle individually, and a whole all-oracles round.  The smoke test
// budget in tools/CMakeLists.txt (200 rounds in tier-1) is set against
// these numbers; if an oracle regresses badly here, the smoke test is the
// next thing to time out.
//
// Results also land in BENCH_fuzz_throughput.json (google-benchmark JSON).
//
//===----------------------------------------------------------------------===//

#include "testing/Fuzzer.h"

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

using namespace fast;
using namespace fast::testing;

namespace {

/// Seeded instance generation alone: languages, four transducers, samples.
void BM_MakeInstance(benchmark::State &State) {
  InstanceOptions Opts;
  Opts.SignatureIndex = static_cast<unsigned>(State.range(0));
  unsigned Seed = 1;
  for (auto _ : State) {
    Session S;
    benchmark::DoNotOptimize(makeInstance(S, Seed++, Opts));
  }
}
BENCHMARK(BM_MakeInstance)->DenseRange(0, 2);

/// One oracle on a fresh default-shaped instance, by registry index.
void BM_Oracle(benchmark::State &State) {
  const Oracle &O = allOracles()[static_cast<size_t>(State.range(0))];
  State.SetLabel(O.Name);
  unsigned Seed = 1;
  unsigned Skipped = 0;
  for (auto _ : State) {
    Session S;
    FuzzInstance I = makeInstance(S, Seed++, InstanceOptions{});
    OracleRun Run = runOracle(O, S, I, OracleOptions{});
    Skipped += Run.Skipped;
    benchmark::DoNotOptimize(Run);
  }
  State.counters["skipped"] = Skipped;
}
BENCHMARK(BM_Oracle)->DenseRange(0, 8)->Unit(benchmark::kMillisecond);

/// A complete fuzz round sweep, as the smoke test runs it (strides on,
/// shrinking off — clean code has nothing to shrink).
void BM_FuzzRounds(benchmark::State &State) {
  for (auto _ : State) {
    FuzzConfig Config;
    Config.Rounds = static_cast<unsigned>(State.range(0));
    Config.Seed = 1;
    Config.Shrink = false;
    benchmark::DoNotOptimize(runFuzz(Config));
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
  State.SetLabel("rounds");
}
BENCHMARK(BM_FuzzRounds)->Arg(5)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  std::vector<char *> Args;
  Args.push_back(argv[0]);
  std::string OutFlag = "--benchmark_out=BENCH_fuzz_throughput.json";
  std::string FormatFlag = "--benchmark_out_format=json";
  Args.push_back(OutFlag.data());
  Args.push_back(FormatFlag.data());
  for (int I = 1; I < argc; ++I)
    Args.push_back(argv[I]);
  int Argc = static_cast<int>(Args.size());

  benchmark::Initialize(&Argc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(Argc, Args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::cout << "machine-readable results written to BENCH_fuzz_throughput.json\n";
  return 0;
}
