//===- bench/sec2_sanitizer_analysis.cpp - Section 2 analysis timing ------===//
//
// Times the motivating example's full verification pipeline: compile the
// Figure 2 program, compose remScript with esc, restrict to well-formed
// inputs, compute the pre-image of the bad-output language, and decide
// emptiness — for the buggy sanitizer (counterexample expected, matching
// the paper's `node["script"] nil nil (node["script"] nil nil nil)`) and
// the fixed one (verification expected).
//
//===----------------------------------------------------------------------===//

#include "apps/Html.h"

#include <chrono>
#include <iomanip>
#include <iostream>

using namespace fast;

namespace {

double msSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

} // namespace

int main() {
  std::cout << "=== Section 2: HTML sanitizer analysis ===\n";
  std::cout << std::fixed << std::setprecision(2);

  for (bool FixBug : {false, true}) {
    Session S;
    auto T0 = std::chrono::steady_clock::now();
    html::Sanitizer Sani = html::buildSanitizer(S, FixBug);
    double BuildMs = msSince(T0);

    auto T1 = std::chrono::steady_clock::now();
    TreeLanguage BadInputs =
        preImageLanguage(S.Solv, *Sani.Sani, Sani.BadOutput);
    double PreImageMs = msSince(T1);

    auto T2 = std::chrono::steady_clock::now();
    bool Empty = isEmptyLanguage(S.Solv, BadInputs);
    double EmptyMs = msSince(T2);

    std::cout << (FixBug ? "fixed" : "buggy")
              << " sanitizer: compile+compose+restrict " << BuildMs
              << " ms; pre-image " << PreImageMs << " ms; emptiness "
              << EmptyMs << " ms -> assert-true (is-empty bad_inputs) "
              << (Empty ? "PASSES" : "FAILS") << "\n";

    if (!FixBug) {
      if (Empty) {
        std::cerr << "ERROR: the buggy sanitizer verified\n";
        return 1;
      }
      auto T3 = std::chrono::steady_clock::now();
      std::optional<TreeRef> W = witness(S.Solv, BadInputs, S.Trees);
      double WitnessMs = msSince(T3);
      std::cout << "  counterexample (" << WitnessMs << " ms):\n    "
                << (*W)->str() << "\n"
                << "  paper's counterexample: node [\"script\"] nil nil "
                   "(node [\"script\"] nil nil nil)\n";
    } else if (!Empty) {
      std::cerr << "ERROR: the fixed sanitizer failed to verify\n";
      return 1;
    }
  }
  return 0;
}
