//===- bench/smt_queries.cpp - Incremental SMT layer query counts ---------===//
//
// Measures what the incremental SMT layer buys in solver traffic: the
// same three workloads run under three configurations,
//
//   baseline   minterm trie off, incremental solving off (pre-trie
//              behaviour: whole-set memo plus the naive enumeration loop)
//   trie       trie on, incremental solving off (scoped checks fall back
//              to one-shot conjunction queries)
//   trie+incr  trie on, scoped push/pop solving on (the default)
//
// and reports per-configuration decision-core checks, Z3 checks, and wall
// time.  Results land in BENCH_smt.json (see BenchJson.h; source tag
// "smt").  With --smoke the benchmark shrinks the workloads, skips the
// JSON, and exits nonzero if the default configuration issues more
// decision-core checks than the baseline — the monotonicity gate wired
// into ctest as perf.smoke.
//
// Workloads:
//   fig6-ar        AR conflict analysis: all-pairs compose/restrict over
//                  generated taggers (Section 5.2); guard-sat heavy.
//   sec51-typecheck  the Figure 2 sanitizer: build, then type-check and
//                  minimize its languages; determinization-heavy.
//   random-typecheck randomized fuzz instances pushed through typeCheck
//                  and minimizeLanguage; minterm-split heavy.
//
//===----------------------------------------------------------------------===//

#include "apps/ArTaggers.h"
#include "apps/Html.h"
#include "automata/Determinize.h"
#include "testing/Instance.h"
#include "transducers/Ops.h"
#include "BenchJson.h"

#include <chrono>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace fast;

namespace {

struct Config {
  const char *Name;
  bool Trie;
  bool Incremental;
};

constexpr Config Configs[] = {
    {"baseline", false, false},
    {"trie", true, false},
    {"trie+incr", true, true},
};

struct Measurement {
  std::string Workload;
  std::string Config;
  double WallMs = 0;
  Solver::Stats Solv;
  MintermTrie::Stats Trie;
};

double msSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

/// Total Z3 interactions: sat checks plus model extractions.
uint64_t z3Total(const Solver::Stats &S) {
  return S.Z3Checks + S.Z3ModelChecks;
}

void workloadFig6Ar(Session &S, bool Smoke) {
  ar::ArOptions Options;
  Options.NumTaggers = Smoke ? 6 : 10;
  ar::ArWorkload W = ar::generateArWorkload(S, /*Seed=*/2014, Options);
  for (unsigned I = 0; I < W.Taggers.size(); ++I)
    for (unsigned J = I + 1; J < W.Taggers.size(); ++J)
      ar::checkConflict(S, W, I, J);
}

void workloadSec51Typecheck(Session &S, bool) {
  html::Sanitizer San = html::buildSanitizer(S, /*FixBug=*/true);
  // The analysis of Figure 2, re-posed explicitly: sanitized node trees
  // stay node trees, and the bad-output language is really disjoint.
  typeCheck(S.Solv, San.NodeTree, *San.Sani, San.NodeTree);
  isEmptyLanguage(S.Solv,
                  intersectLanguages(S.Solv, San.NodeTree, San.BadOutput));
  minimizeLanguage(S.Solv, San.NodeTree);
  minimizeLanguage(S.Solv, San.BadOutput);
}

void workloadRandomTypecheck(Session &S, bool Smoke) {
  unsigned Seeds = Smoke ? 2 : 6;
  for (unsigned Seed = 1; Seed <= Seeds; ++Seed) {
    fast::testing::InstanceOptions Options;
    Options.SignatureIndex = Seed % 3;
    Options.NumStates = 3 + Seed % 2;
    Options.MaxRulesPerCtor = 2 + Seed % 2;
    Options.NumSamples = 0; // Concrete samples play no role here.
    fast::testing::FuzzInstance I =
        fast::testing::makeInstance(S, Seed, Options);
    typeCheck(S.Solv, I.LangA, *I.Det1, I.LangB);
    minimizeLanguage(S.Solv, I.LangA);
    minimizeLanguage(S.Solv, unionLanguages(I.LangA, I.LangB));
  }
}

using WorkloadFn = void (*)(Session &, bool);

constexpr struct {
  const char *Name;
  WorkloadFn Run;
} Workloads[] = {
    {"fig6-ar", workloadFig6Ar},
    {"sec51-typecheck", workloadSec51Typecheck},
    {"random-typecheck", workloadRandomTypecheck},
};

Measurement measure(const char *Workload, WorkloadFn Run,
                    const Config &Cfg, bool Smoke) {
  Session S;
  S.engine().Guards.setTrieEnabled(Cfg.Trie);
  S.Solv.setIncrementalEnabled(Cfg.Incremental);
  S.Solv.resetStats();
  auto T0 = std::chrono::steady_clock::now();
  Run(S, Smoke);
  Measurement M;
  M.WallMs = msSince(T0);
  M.Workload = Workload;
  M.Config = Cfg.Name;
  M.Solv = S.Solv.stats();
  M.Trie = S.engine().Guards.trie().stats();
  return M;
}

std::string statsJson(const Measurement &M) {
  std::ostringstream Out;
  Out << "{\"queries\":" << M.Solv.Queries
      << ",\"cache_hits\":" << M.Solv.CacheHits
      << ",\"trivial\":" << M.Solv.TrivialAnswers
      << ",\"fast_path\":" << M.Solv.FastPathAnswers
      << ",\"core_checks\":" << M.Solv.CoreChecks
      << ",\"z3_checks\":" << M.Solv.Z3Checks
      << ",\"z3_model_checks\":" << M.Solv.Z3ModelChecks
      << ",\"scoped_checks\":" << M.Solv.ScopedChecks
      << ",\"literals_asserted\":" << M.Solv.LiteralsAsserted
      << ",\"subsumption_answers\":" << M.Solv.SubsumptionAnswers
      << ",\"implication_queries\":" << M.Solv.ImplicationQueries
      << ",\"trie_nodes_decided\":" << M.Trie.NodesDecided
      << ",\"trie_node_hits\":" << M.Trie.NodeHits
      << ",\"trie_subsumed\":" << M.Trie.SubsumptionAnswers
      << ",\"trie_split_hits\":" << M.Trie.SplitHits
      << ",\"z3_check_us\":" << M.Solv.Z3CheckUs.json() << "}";
  return Out.str();
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  std::string OutPath = "BENCH_smt.json";
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--smoke") == 0)
      Smoke = true;
    else if (std::strncmp(Argv[I], "--out=", 6) == 0)
      OutPath = Argv[I] + 6;
  }

  std::cout << "=== Solver traffic under the incremental SMT layer"
            << (Smoke ? " (smoke)" : "") << " ===\n";
  std::cout << std::left << std::setw(18) << "workload" << std::setw(12)
            << "config" << std::right << std::setw(10) << "queries"
            << std::setw(10) << "core" << std::setw(8) << "z3"
            << std::setw(10) << "subsume" << std::setw(10) << "trie-hit"
            << std::setw(11) << "wall ms" << "\n";

  bench::BenchJsonWriter Json(OutPath, "smt");
  bool Monotone = true;
  for (const auto &W : Workloads) {
    uint64_t BaselineCore = 0, BaselineZ3 = 0;
    for (const Config &Cfg : Configs) {
      Measurement M = measure(W.Name, W.Run, Cfg, Smoke);
      std::cout << std::left << std::setw(18) << M.Workload << std::setw(12)
                << M.Config << std::right << std::setw(10)
                << M.Solv.Queries << std::setw(10) << M.Solv.CoreChecks
                << std::setw(8) << z3Total(M.Solv) << std::setw(10)
                << M.Solv.SubsumptionAnswers + M.Trie.SubsumptionAnswers
                << std::setw(10) << M.Trie.NodeHits << std::setw(11)
                << std::fixed << std::setprecision(1) << M.WallMs << "\n";
      if (std::strcmp(Cfg.Name, "baseline") == 0) {
        BaselineCore = M.Solv.CoreChecks;
        BaselineZ3 = z3Total(M.Solv);
      } else if (std::strcmp(Cfg.Name, "trie+incr") == 0) {
        if (M.Solv.CoreChecks > BaselineCore ||
            z3Total(M.Solv) > BaselineZ3) {
          Monotone = false;
          std::cout << "  ^ REGRESSION: trie+incr issues more solver "
                       "checks than baseline on "
                    << M.Workload << "\n";
        }
      }
      if (!Smoke)
        Json.add(std::string(W.Name) + "/" + Cfg.Name, Smoke ? 0 : 1,
                 M.WallMs, statsJson(M));
    }
  }

  if (!Smoke) {
    if (Json.flush())
      std::cout << "machine-readable results written to " << Json.path()
                << "\n";
    else
      std::cout << "warning: could not write " << OutPath << "\n";
  }
  if (!Monotone) {
    std::cout << "FAIL: the incremental layer increased solver traffic\n";
    return 1;
  }
  std::cout << "OK: trie+incr never issues more solver checks than "
               "baseline\n";
  return 0;
}
