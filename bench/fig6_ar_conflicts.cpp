//===- bench/fig6_ar_conflicts.cpp - Figure 6 reproduction ----------------===//
//
// Reproduces Figure 6: the running-time histograms of the three transducer
// operations in the AR conflict analysis (composition, input restriction,
// output restriction) over all tagger pairs, plus the summary statistics
// quoted in Section 5.2 (averages, conflict count, ~200 ms per pairwise
// check).
//
// The paper uses 100 taggers (4,950 pairs).  On this single-core harness
// the default is 100 as well; pass a smaller count as argv[1] for a quick
// run, e.g. `fig6_ar_conflicts 40`.
//
//===----------------------------------------------------------------------===//

#include "apps/ArTaggers.h"
#include "BenchJson.h"

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <vector>

using namespace fast;

namespace {

/// Histogram over the power-of-two millisecond buckets of Figure 6.
struct Histogram {
  // Bucket k holds [2^(k-1), 2^k) ms, with bucket 0 = [0, 1).
  std::vector<unsigned> Buckets = std::vector<unsigned>(18, 0);

  void add(double Ms) {
    unsigned K = 0;
    double Hi = 1.0;
    while (Ms >= Hi && K + 1 < Buckets.size()) {
      Hi *= 2;
      ++K;
    }
    ++Buckets[K];
  }
};

std::string bucketLabel(unsigned K) {
  auto Fmt = [](double V) {
    long L = static_cast<long>(V);
    std::string Text = std::to_string(L);
    // Thousands separators, as in the figure's axis labels.
    for (int I = static_cast<int>(Text.size()) - 3; I > 0; I -= 3)
      Text.insert(static_cast<size_t>(I), ",");
    return Text;
  };
  double Lo = K == 0 ? 0 : 1 << (K - 1);
  double Hi = 1 << K;
  return "[" + Fmt(Lo) + "-" + Fmt(Hi) + ")";
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned NumTaggers = Argc > 1 ? std::atoi(Argv[1]) : 100;
  unsigned Seed = Argc > 2 ? std::atoi(Argv[2]) : 2014;

  std::cout << "=== Figure 6: AR conflict analysis, running times per "
               "operation ===\n";
  Session S;
  ar::ArOptions Options;
  Options.NumTaggers = NumTaggers;
  ar::ArWorkload W = ar::generateArWorkload(S, Seed, Options);

  unsigned MinStates = ~0u, MaxStates = 0;
  for (const auto &T : W.Taggers) {
    MinStates = std::min<unsigned>(MinStates, T->numStates());
    MaxStates = std::max<unsigned>(MaxStates, T->numStates());
  }
  std::cout << "taggers: " << NumTaggers << " (sizes " << MinStates << ".."
            << MaxStates << " states; paper: 1..95)\n"
            << "input-restriction language: "
            << W.Untagged.automaton().numStates()
            << " states (paper: 3); output-restriction language: "
            << W.DoubleTagged.automaton().numStates()
            << " states (paper: 5)\n";

  Histogram Compose, InputRestrict, OutputRestrict;
  double SumCompose = 0, SumInput = 0, SumOutput = 0, SumTotal = 0;
  double MaxCompose = 0, MaxInput = 0, MaxOutput = 0;
  unsigned Pairs = 0, Conflicts = 0;
  size_t MaxRestrictedStates = 0, MaxRestrictedRules = 0;

  for (unsigned I = 0; I < NumTaggers; ++I) {
    for (unsigned J = I + 1; J < NumTaggers; ++J) {
      ar::ConflictCheck C = ar::checkConflict(S, W, I, J);
      ++Pairs;
      Conflicts += C.Conflict;
      Compose.add(C.ComposeMs);
      InputRestrict.add(C.InputRestrictMs);
      OutputRestrict.add(C.OutputRestrictMs);
      SumCompose += C.ComposeMs;
      SumInput += C.InputRestrictMs;
      SumOutput += C.OutputRestrictMs;
      SumTotal += C.ComposeMs + C.InputRestrictMs + C.OutputRestrictMs +
                  C.EmptinessMs;
      MaxCompose = std::max(MaxCompose, C.ComposeMs);
      MaxInput = std::max(MaxInput, C.InputRestrictMs);
      MaxOutput = std::max(MaxOutput, C.OutputRestrictMs);
      MaxRestrictedStates =
          std::max(MaxRestrictedStates, C.RestrictedStates);
      MaxRestrictedRules = std::max(MaxRestrictedRules, C.RestrictedRules);
    }
  }

  std::cout << "\npairs analyzed: " << Pairs << " (paper: 4,950); actual "
            << "conflicts: " << Conflicts << " (paper: 222)\n\n";

  std::cout << std::left << std::setw(18) << "time interval (ms)"
            << std::right << std::setw(14) << "Composition" << std::setw(20)
            << "Input restriction" << std::setw(21) << "Output restriction"
            << "\n";
  for (unsigned K = 0; K < 18; ++K) {
    if (Compose.Buckets[K] == 0 && InputRestrict.Buckets[K] == 0 &&
        OutputRestrict.Buckets[K] == 0)
      continue;
    std::cout << std::left << std::setw(18) << bucketLabel(K) << std::right
              << std::setw(14) << Compose.Buckets[K] << std::setw(20)
              << InputRestrict.Buckets[K] << std::setw(21)
              << OutputRestrict.Buckets[K] << "\n";
  }

  std::cout << std::fixed << std::setprecision(1);
  std::cout << "\naverages (ms):  composition " << SumCompose / Pairs
            << " (paper: 15), input restriction " << SumInput / Pairs
            << " (paper: 3.5), output restriction " << SumOutput / Pairs
            << " (paper: 175)\n";
  std::cout << "maxima  (ms):   composition " << MaxCompose
            << " (paper: <250), input restriction " << MaxInput
            << " (paper: <150), output restriction " << MaxOutput
            << " (paper: <33,000)\n";
  std::cout << "average per pairwise check: " << SumTotal / Pairs
            << " ms (paper: 193 ms)\n";
  std::cout << "largest input-restricted transducer: " << MaxRestrictedStates
            << " states, " << MaxRestrictedRules
            << " rules (paper: up to 300 states / 4,000 rules)\n";

  bench::BenchJsonWriter Json("BENCH_figs.json", "fig6");
  std::string Stats = S.stats().json();
  Json.add("fig6_compose_avg", NumTaggers, SumCompose / Pairs, "{}");
  Json.add("fig6_input_restrict_avg", NumTaggers, SumInput / Pairs, "{}");
  Json.add("fig6_output_restrict_avg", NumTaggers, SumOutput / Pairs, "{}");
  Json.add("fig6_pairwise_check_avg", NumTaggers, SumTotal / Pairs, Stats);
  if (Json.flush())
    std::cout << "\nmachine-readable results merged into " << Json.path()
              << "\n";
  return 0;
}
