//===- bench/parallel_scaling.cpp - ParallelRunner scaling curves ---------===//
//
// Measures the parallel driver on the two embarrassingly parallel
// workloads the ISSUE's refactor unlocks, plus the intra-construction
// frontier:
//
//   fig6_pairwise       the AR conflict analysis' pairwise compose +
//                       restrict + emptiness matrix (checkAllConflicts)
//   random_typecheck    seeded fuzz instances, each type-checked through a
//                       compose(Det1, Det2) pipeline against its random
//                       input/output languages
//   intra_determinize   ONE normalize + determinize over a seeded STA,
//                       parallelized inside the construction by the warm
//                       frontier (engine/ParallelExploration.h); the
//                       thread count is the lane count, and the products
//                       must be byte-identical at every count
//
// Each workload runs sequentially (the legacy single-session path) and at
// 1/2/4/8 worker threads, verifying that verdicts are identical across
// every configuration, and appends records to BENCH_parallel.json:
//
//   {"source":"parallel_scaling","name":"fig6_pairwise/j4","n":4,
//    "wall_ms":...,"engine":{...,"hardware_threads":N,"tasks":T}}
//
// `n` is the thread count (0 = sequential path).  Speedups are whatever
// the host gives — on a single-core container every thread count
// serializes onto one CPU and the interesting number is the overhead of
// the worker-context machinery, which `--smoke` gates: the -j1 path must
// not lose to the sequential path by more than the tolerance below.
//
// Usage: parallel_scaling [--smoke] [fig6-taggers] [typecheck-instances]
//                         [intra-states]
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "apps/ArTaggers.h"
#include "automata/Determinize.h"
#include "automata/StaOps.h"
#include "engine/Engine.h"
#include "testing/Instance.h"
#include "transducers/Ops.h"
#include "transducers/Parallel.h"

#include <chrono>
#include <cstdlib>
#include <functional>
#include <iomanip>
#include <iostream>
#include <random>
#include <string>
#include <vector>

using namespace fast;
using Clock = std::chrono::steady_clock;

namespace {

double msSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

/// The -j1-vs-sequential overhead gate for --smoke: worker contexts trade
/// the sequential path's cross-task guard-cache reuse for isolation, so a
/// small constant + relative allowance absorbs that and timer noise.
constexpr double SmokeRelTolerance = 1.35;
constexpr double SmokeAbsToleranceMs = 250.0;

/// Sanitizer instrumentation inflates the per-context constant costs
/// unpredictably (allocator interception dominates the fresh-context
/// path), so the wall-time gate is only enforced on uninstrumented
/// builds; the verdict cross-checks always apply — running the workloads
/// under the sanitizers is the point of those presets.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool InstrumentedBuild = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool InstrumentedBuild = true;
#else
constexpr bool InstrumentedBuild = false;
#endif
#else
constexpr bool InstrumentedBuild = false;
#endif

struct Measurement {
  double WallMs = 0;
  std::string Verdicts; // order-sensitive fingerprint, e.g. "CC.C.."
  std::string StatsJson;
  /// ExploreLanes the session built (intra-construction workload only).
  size_t LanesBuilt = 0;
};

/// One fig6 pairwise run at \p Threads (0 = sequential path) in a fresh
/// session, so no run warms another's caches.
Measurement runFig6(unsigned Taggers, unsigned Threads) {
  Session S;
  ar::ArOptions Options;
  Options.NumTaggers = Taggers;
  ar::ArWorkload W = ar::generateArWorkload(S, /*Seed=*/2014, Options);
  Clock::time_point Start = Clock::now();
  std::vector<ar::ConflictCheck> Checks = ar::checkAllConflicts(S, W, Threads);
  Measurement M;
  M.WallMs = msSince(Start);
  for (const ar::ConflictCheck &C : Checks)
    M.Verdicts += C.Conflict ? 'C' : '.';
  M.StatsJson = S.stats().json();
  return M;
}

/// One random type-check sweep at \p Threads: \p Instances seeded fuzz
/// instances built sequentially pre-freeze, then each pipeline
/// compose(Det1, Det2) type-checked LangA -> LangB in its own task.
Measurement runTypecheck(unsigned Instances, unsigned Threads) {
  Session S;
  testing::InstanceOptions Options;
  Options.NumStates = 4;
  Options.NumSamples = 0;
  std::vector<testing::FuzzInstance> Pool;
  for (unsigned I = 0; I < Instances; ++I)
    Pool.push_back(testing::makeInstance(S, /*Seed=*/1000 + I, Options));

  Measurement M;
  M.Verdicts.assign(Instances, '?');
  Clock::time_point Start = Clock::now();
  auto checkOne = [](Session &In, const testing::FuzzInstance &Inst) {
    ComposeResult R =
        composeSttr(In.Solv, In.Outputs, *Inst.Det1, *Inst.Det2);
    if (!R.Composed)
      return '!';
    return typeCheck(In.Solv, Inst.LangA, *R.Composed, Inst.LangB) ? 'T'
                                                                   : 'F';
  };
  if (Threads == 0) {
    for (unsigned I = 0; I < Instances; ++I)
      M.Verdicts[I] = checkOne(S, Pool[I]);
  } else {
    ParallelRunner Runner(S, Threads);
    Runner.run(Instances, [&](size_t I, WorkerContext &Worker) {
      M.Verdicts[I] = checkOne(Worker.session(), Pool[I]);
    });
  }
  M.WallMs = msSince(Start);
  M.StatsJson = S.stats().json();
  return M;
}

/// A seeded STA over BT (one int attribute; L rank 0, N rank 2) with
/// interval guards and set-valued lookaheads, sized so the normalize +
/// determinize pipeline below has a real reachable-state fixpoint to
/// explore.
std::shared_ptr<Sta> buildRandomSta(Session &S, const SignatureRef &Sig,
                                    unsigned Seed, unsigned NumStates) {
  auto A = std::make_shared<Sta>(Sig);
  std::mt19937 Rng(Seed);
  TermRef I = Sig->attrTerm(S.Terms, 0);
  unsigned Leaf = *Sig->findConstructor("L");
  unsigned Node = *Sig->findConstructor("N");
  for (unsigned Q = 0; Q < NumStates; ++Q)
    A->addState("q" + std::to_string(Q));
  auto Atom = [&]() -> TermRef {
    TermRef C = S.Terms.intConst(static_cast<int64_t>(Rng() % 11));
    return Rng() % 2 ? S.Terms.mkGt(I, C) : S.Terms.mkLe(I, C);
  };
  auto Guard = [&]() -> TermRef {
    TermRef G = Atom();
    switch (Rng() % 3) {
    case 0:
      return G;
    case 1:
      return S.Terms.mkAnd(G, Atom());
    default:
      return S.Terms.mkOr(G, Atom());
    }
  };
  auto SomeStates = [&]() {
    StateSet Set;
    for (unsigned Q = 0; Q < NumStates; ++Q)
      if (Rng() % 2)
        Set.push_back(Q);
    if (Set.empty())
      Set.push_back(Rng() % NumStates);
    return Set;
  };
  for (unsigned Q = 0; Q < NumStates; ++Q) {
    A->addRule(Q, Leaf, Guard(), {});
    A->addRule(Q, Leaf, Guard(), {});
    A->addRule(Q, Node, Guard(), {SomeStates(), SomeStates()});
    A->addRule(Q, Node, Guard(), {SomeStates(), SomeStates()});
    A->addRule(Q, Node, Guard(), {SomeStates(), SomeStates()});
  }
  return A;
}

/// One intra-construction run: a single normalize + determinize pipeline
/// with \p Lanes warm-frontier lanes (0 = sequential path) in a fresh
/// session.  The verdict fingerprint hashes the rendered products, so a
/// lane count that changed even one byte of either automaton trips the
/// cross-check in main().
Measurement runIntraConstruction(unsigned States, unsigned Lanes,
                                 size_t MinInputRules = 1) {
  Session S;
  engine::ExplorationLimits &Limits = S.engine().Limits;
  Limits.ParallelExploration = Lanes;
  Limits.ParallelMinInputRules = MinInputRules;
  SignatureRef Sig = TreeSignature::create("BT", {{"i", Sort::Int}},
                                           {{"L", 0}, {"N", 2}});
  std::shared_ptr<Sta> A = buildRandomSta(S, Sig, /*Seed=*/2014, States);
  Clock::time_point Start = Clock::now();
  TreeLanguage Norm = normalize(S.Solv, TreeLanguage(A, StateSet{0, 1}));
  DeterminizedSta Det = determinize(S.Solv, Norm.automaton());
  Measurement M;
  M.WallMs = msSince(Start);
  M.Verdicts = std::to_string(std::hash<std::string>{}(
      Norm.automaton().str() + "|" + Det.Automaton->str()));
  M.StatsJson = S.stats().json();
  M.LanesBuilt = S.engine().Lanes.size();
  return M;
}

/// Splices bench-level fields into the engine-stats JSON object so each
/// record is self-describing.
std::string withBenchFields(const std::string &StatsJson, unsigned Tasks) {
  std::string Extra = "\"hardware_threads\":" +
                      std::to_string(hardwareThreads()) +
                      ",\"tasks\":" + std::to_string(Tasks) + ",";
  if (StatsJson.size() >= 2 && StatsJson.front() == '{')
    return "{" + Extra + StatsJson.substr(1);
  return "{" + Extra.substr(0, Extra.size() - 1) + "}";
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  std::vector<unsigned> Sizes;
  for (int I = 1; I < Argc; ++I) {
    if (std::string(Argv[I]) == "--smoke")
      Smoke = true;
    else
      Sizes.push_back(static_cast<unsigned>(std::atoi(Argv[I])));
  }
  unsigned Taggers = Sizes.size() > 0 ? Sizes[0] : (Smoke ? 8 : 20);
  unsigned Instances = Sizes.size() > 1 ? Sizes[1] : (Smoke ? 12 : 48);
  unsigned IntraStates = Sizes.size() > 2 ? Sizes[2] : (Smoke ? 4 : 6);
  const std::vector<unsigned> ThreadCounts = {0, 1, 2, 4, 8};

  std::cout << "=== parallel scaling: fig6 pairwise (" << Taggers
            << " taggers, " << Taggers * (Taggers - 1) / 2
            << " pairs) + random type-check (" << Instances
            << " pipelines); " << hardwareThreads()
            << " hardware thread(s) ===\n";

  bench::BenchJsonWriter Json("BENCH_parallel.json", "parallel_scaling");
  bool Ok = true;

  struct Workload {
    const char *Name;
    unsigned Tasks;
    std::function<Measurement(unsigned)> Run;
  };
  std::vector<Workload> Workloads = {
      {"fig6_pairwise", Taggers * (Taggers - 1) / 2,
       [&](unsigned T) { return runFig6(Taggers, T); }},
      {"random_typecheck", Instances,
       [&](unsigned T) { return runTypecheck(Instances, T); }},
      // One task; the thread count is the warm-frontier lane count.
      {"intra_determinize", 1,
       [&](unsigned T) { return runIntraConstruction(IntraStates, T); }},
  };

  for (const Workload &W : Workloads) {
    std::cout << "\n-- " << W.Name << " --\n";
    Measurement Seq;
    double J1Ms = 0;
    for (unsigned Threads : ThreadCounts) {
      Measurement M = W.Run(Threads);
      std::string Label =
          Threads == 0 ? "seq" : "j" + std::to_string(Threads);
      Json.add(std::string(W.Name) + "/" + Label, Threads, M.WallMs,
               withBenchFields(M.StatsJson, W.Tasks));
      std::cout << std::left << std::setw(6) << Label << std::right
                << std::fixed << std::setprecision(1) << std::setw(9)
                << M.WallMs << " ms";
      if (Threads == 0) {
        Seq = M;
        std::cout << "  (baseline)";
      } else {
        std::cout << "  speedup vs seq " << std::setprecision(2)
                  << Seq.WallMs / M.WallMs << "x";
        if (M.Verdicts != Seq.Verdicts) {
          std::cout << "  VERDICT MISMATCH";
          Ok = false;
        }
        if (Threads == 1)
          J1Ms = M.WallMs;
      }
      std::cout << "\n";
    }
    if (Smoke && J1Ms > Seq.WallMs * SmokeRelTolerance + SmokeAbsToleranceMs) {
      if (InstrumentedBuild) {
        std::cout << "note: -j1 (" << J1Ms << " ms) vs sequential ("
                  << Seq.WallMs
                  << " ms) over tolerance; gate not enforced under "
                     "sanitizer instrumentation\n";
      } else {
        std::cout << "FAIL: -j1 (" << J1Ms << " ms) lost to sequential ("
                  << Seq.WallMs << " ms) beyond tolerance\n";
        Ok = false;
      }
    }
  }

  // Small-input fallback parity: below the rule threshold the lane knob
  // must build no lanes and leave the products byte-identical — the
  // deterministic fallback the replay invariant relies on for inputs too
  // small to amortize thread setup.
  {
    std::cout << "\n-- intra_determinize fallback parity --\n";
    Measurement Seq = runIntraConstruction(3, /*Lanes=*/0);
    Measurement Thresholded =
        runIntraConstruction(3, /*Lanes=*/4, /*MinInputRules=*/1u << 20);
    if (Thresholded.LanesBuilt != 0) {
      std::cout << "FAIL: thresholded run built "
                << Thresholded.LanesBuilt << " lane(s)\n";
      Ok = false;
    } else if (Seq.Verdicts != Thresholded.Verdicts) {
      std::cout << "FAIL: fallback product differs from sequential\n";
      Ok = false;
    } else {
      std::cout << "ok: 0 lanes built, products byte-identical\n";
    }
  }

  if (!Json.flush()) {
    std::cerr << "parallel_scaling: cannot write " << Json.path() << "\n";
    return 1;
  }
  std::cout << "\nwrote " << Json.path() << "\n";
  if (!Ok)
    return 1;
  std::cout << (Smoke ? "smoke gate passed\n" : "");
  return 0;
}
