//===- bench/fig7_deforestation.cpp - Figure 7 reproduction ---------------===//
//
// Reproduces Figure 7: evaluation time of n composed map_caesar functions
// over a 4,096-element integer list, with deforestation (compose the
// transducers once, run once) and without (n passes with materialized
// intermediate lists).  The paper reports 1,313 ms vs 4,686 ms at n = 512
// on their hardware; the *shape* — Fast roughly flat in n, naive linear —
// is the reproduction target.
//
//===----------------------------------------------------------------------===//

#include "apps/Deforestation.h"
#include "BenchJson.h"

#include <chrono>
#include <iomanip>
#include <cstdlib>
#include <iostream>

using namespace fast;

namespace {

double msSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

} // namespace

int main(int Argc, char **Argv) {
  size_t ListLength = Argc > 1 ? std::strtoul(Argv[1], nullptr, 10) : 4096;
  std::cout << "=== Figure 7: deforestation advantage for a list of "
            << ListLength << " integers ===\n";
  std::cout << std::left << std::setw(10) << "n" << std::right
            << std::setw(16) << "naive (ms)" << std::setw(16)
            << "fast (ms)" << std::setw(18) << "fusion (ms)" << std::setw(12)
            << "speedup" << "\n";

  Session S;
  SignatureRef Sig = defo::listSignature();
  TreeRef Input = defo::randomList(S, Sig, ListLength, /*Seed=*/2014);

  std::cout << std::fixed << std::setprecision(2);
  bench::BenchJsonWriter Json("BENCH_figs.json", "fig7");
  for (unsigned N : {16u, 32u, 64u, 128u, 256u, 512u}) {
    std::vector<std::shared_ptr<Sttr>> Pipeline;
    for (unsigned I = 0; I < N; ++I)
      Pipeline.push_back(defo::makeMapCaesar(S, Sig));
    S.stats().reset(); // Per-n engine counters (composition only).

    auto T0 = std::chrono::steady_clock::now();
    TreeRef Naive = defo::runNaive(S, Pipeline, Input);
    double NaiveMs = msSince(T0);

    auto T1 = std::chrono::steady_clock::now();
    std::shared_ptr<Sttr> Fused = defo::composePipeline(S, Pipeline);
    double FusionMs = msSince(T1);

    auto T2 = std::chrono::steady_clock::now();
    TreeRef FusedOut = defo::runComposed(S, *Fused, Input);
    double FastMs = msSince(T2);

    if (Naive != FusedOut) {
      std::cerr << "ERROR: fused and naive results differ at n=" << N << "\n";
      return 1;
    }
    std::cout << std::left << std::setw(10) << N << std::right
              << std::setw(16) << NaiveMs << std::setw(16) << FastMs
              << std::setw(18) << FusionMs << std::setw(11)
              << NaiveMs / FastMs << "x\n";
    Json.add("fig7_naive", N, NaiveMs, "{}");
    Json.add("fig7_fast", N, FastMs, "{}");
    Json.add("fig7_fusion", N, FusionMs, S.stats().json());
  }
  std::cout << "\npaper at n=512: Fast 1,313 ms vs naive 4,686 ms "
               "(3.6x); expected shape: naive linear in n, Fast flat\n";
  if (Json.flush())
    std::cout << "machine-readable results merged into " << Json.path()
              << "\n";
  return 0;
}
