//===- bench/micro_benchmarks.cpp - google-benchmark kernels --------------===//
//
// Micro-benchmarks (google-benchmark) for the individual operations the
// figure-level benches compose: transducer evaluation, membership,
// composition, normalization, and solver queries.  These quantify where
// the figure-level time goes.
//
// Besides the console table, every run writes the full results as
// BENCH_micro.json (google-benchmark's JSON format).  The construction
// benchmarks attach engine counters (states explored, rules emitted, guard
// cache hits) to their records.
//
//===----------------------------------------------------------------------===//

#include "apps/Deforestation.h"
#include "apps/Html.h"
#include "transducers/Run.h"

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

using namespace fast;

namespace {

/// Transducer evaluation over a list, per element.
void BM_RunMapCaesar(benchmark::State &State) {
  Session S;
  SignatureRef Sig = defo::listSignature();
  std::shared_ptr<Sttr> Map = defo::makeMapCaesar(S, Sig);
  TreeRef Input = defo::randomList(S, Sig, State.range(0), /*Seed=*/1);
  for (auto _ : State) {
    SttrRunner Runner(*Map, S.Trees);
    benchmark::DoNotOptimize(Runner.run(Input));
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}
BENCHMARK(BM_RunMapCaesar)->Arg(256)->Arg(1024)->Arg(4096);

/// Concrete membership in the well-formed-HTML language.
void BM_LanguageMembership(benchmark::State &State) {
  Session S;
  html::Sanitizer Sani = html::buildSanitizer(S);
  std::string Error;
  TreeRef Doc = html::parseHtml(
      S, Sani.Sig, html::generatePage(State.range(0), /*Seed=*/2), Error);
  for (auto _ : State)
    benchmark::DoNotOptimize(Sani.NodeTree.contains(Doc));
  State.SetItemsProcessed(State.iterations() * Doc->size());
}
BENCHMARK(BM_LanguageMembership)->Arg(8 << 10)->Arg(64 << 10);

/// Attach the engine counters accumulated in \p S to the benchmark record
/// (averaged per iteration), so BENCH_micro.json carries them.
void reportEngineCounters(benchmark::State &State, Session &S) {
  engine::ConstructionStats Total;
  for (const auto &[Name, C] : S.stats().constructions()) {
    Total.StatesExplored += C.StatesExplored;
    Total.RulesEmitted += C.RulesEmitted;
    Total.SatQueries += C.SatQueries;
    Total.SatCacheHits += C.SatCacheHits;
    Total.MintermSplits += C.MintermSplits;
    Total.MintermCacheHits += C.MintermCacheHits;
    Total.SolverQueryUs.merge(C.SolverQueryUs);
    Total.MintermSplitUs.merge(C.MintermSplitUs);
  }
  auto PerIter = [&](uint64_t V) {
    return benchmark::Counter(static_cast<double>(V),
                              benchmark::Counter::kAvgIterations);
  };
  State.counters["states_explored"] = PerIter(Total.StatesExplored);
  State.counters["rules_emitted"] = PerIter(Total.RulesEmitted);
  State.counters["sat_queries"] = PerIter(Total.SatQueries);
  State.counters["sat_cache_hits"] = PerIter(Total.SatCacheHits);
  State.counters["minterm_splits"] = PerIter(Total.MintermSplits);
  State.counters["minterm_cache_hits"] = PerIter(Total.MintermCacheHits);
  // Latency percentiles are properties of the whole run, not per-iteration
  // averages, so they go in as plain counters.
  auto Plain = [](double V) { return benchmark::Counter(V); };
  State.counters["solver_query_p50_us"] = Plain(Total.SolverQueryUs.percentileUs(50));
  State.counters["solver_query_p95_us"] = Plain(Total.SolverQueryUs.percentileUs(95));
  State.counters["solver_query_p99_us"] = Plain(Total.SolverQueryUs.percentileUs(99));
  State.counters["minterm_split_p50_us"] = Plain(Total.MintermSplitUs.percentileUs(50));
  State.counters["minterm_split_p95_us"] = Plain(Total.MintermSplitUs.percentileUs(95));
  State.counters["minterm_split_p99_us"] = Plain(Total.MintermSplitUs.percentileUs(99));
}

/// One composition of the Figure 8 transducers.
void BM_ComposeMapFilter(benchmark::State &State) {
  Session S;
  SignatureRef Sig = defo::listSignature();
  std::shared_ptr<Sttr> Map = defo::makeMapCaesar(S, Sig);
  std::shared_ptr<Sttr> Filter = defo::makeFilterEven(S, Sig);
  S.stats().reset();
  for (auto _ : State)
    benchmark::DoNotOptimize(
        composeSttr(S.Solv, S.Outputs, *Map, *Filter).Composed);
  reportEngineCounters(State, S);
}
BENCHMARK(BM_ComposeMapFilter);

/// Normalization of the (alternating) well-formed-HTML language.
void BM_NormalizeHtmlLang(benchmark::State &State) {
  Session S;
  html::Sanitizer Sani = html::buildSanitizer(S);
  S.stats().reset();
  for (auto _ : State)
    benchmark::DoNotOptimize(normalize(S.Solv, Sani.NodeTree));
  reportEngineCounters(State, S);
}
BENCHMARK(BM_NormalizeHtmlLang);

/// A cached vs uncached satisfiability query.
void BM_SolverIsSat(benchmark::State &State) {
  Session S;
  bool Cached = State.range(0) != 0;
  S.Solv.setCacheEnabled(Cached);
  TermRef X = S.Terms.attr(0, Sort::Int, "x");
  TermRef Pred = S.Terms.mkAnd(
      S.Terms.mkEq(S.Terms.mkMod(X, S.Terms.intConst(7)), S.Terms.intConst(3)),
      S.Terms.mkLt(X, S.Terms.intConst(100)));
  for (auto _ : State)
    benchmark::DoNotOptimize(S.Solv.isSat(Pred));
}
BENCHMARK(BM_SolverIsSat)->Arg(0)->Arg(1);

/// Guard evaluation (no solver) on a concrete label.
void BM_EvalGuard(benchmark::State &State) {
  Session S;
  TermRef X = S.Terms.attr(0, Sort::Int, "x");
  TermRef Pred = S.Terms.mkAnd(
      S.Terms.mkEq(S.Terms.mkMod(X, S.Terms.intConst(7)), S.Terms.intConst(3)),
      S.Terms.mkLt(X, S.Terms.intConst(100)));
  std::vector<Value> Attrs = {Value::integer(17)};
  for (auto _ : State)
    benchmark::DoNotOptimize(evalPredicate(Pred, Attrs));
}
BENCHMARK(BM_EvalGuard);

} // namespace

// Custom main: the console table as usual, plus the complete results as
// BENCH_micro.json for machine consumption.  The JSON output is wired as a
// default the command line can still override with its own
// --benchmark_out=... flags (later flags win).
int main(int argc, char **argv) {
  std::vector<char *> Args;
  Args.push_back(argv[0]);
  std::string OutFlag = "--benchmark_out=BENCH_micro.json";
  std::string FormatFlag = "--benchmark_out_format=json";
  Args.push_back(OutFlag.data());
  Args.push_back(FormatFlag.data());
  for (int I = 1; I < argc; ++I)
    Args.push_back(argv[I]);
  int Argc = static_cast<int>(Args.size());

  benchmark::Initialize(&Argc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(Argc, Args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::cout << "machine-readable results written to BENCH_micro.json\n";
  return 0;
}
