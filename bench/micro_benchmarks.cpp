//===- bench/micro_benchmarks.cpp - google-benchmark kernels --------------===//
//
// Micro-benchmarks (google-benchmark) for the individual operations the
// figure-level benches compose: transducer evaluation, membership,
// composition, normalization, and solver queries.  These quantify where
// the figure-level time goes.
//
//===----------------------------------------------------------------------===//

#include "apps/Deforestation.h"
#include "apps/Html.h"
#include "transducers/Run.h"

#include <benchmark/benchmark.h>

using namespace fast;

namespace {

/// Transducer evaluation over a list, per element.
void BM_RunMapCaesar(benchmark::State &State) {
  Session S;
  SignatureRef Sig = defo::listSignature();
  std::shared_ptr<Sttr> Map = defo::makeMapCaesar(S, Sig);
  TreeRef Input = defo::randomList(S, Sig, State.range(0), /*Seed=*/1);
  for (auto _ : State) {
    SttrRunner Runner(*Map, S.Trees);
    benchmark::DoNotOptimize(Runner.run(Input));
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}
BENCHMARK(BM_RunMapCaesar)->Arg(256)->Arg(1024)->Arg(4096);

/// Concrete membership in the well-formed-HTML language.
void BM_LanguageMembership(benchmark::State &State) {
  Session S;
  html::Sanitizer Sani = html::buildSanitizer(S);
  std::string Error;
  TreeRef Doc = html::parseHtml(
      S, Sani.Sig, html::generatePage(State.range(0), /*Seed=*/2), Error);
  for (auto _ : State)
    benchmark::DoNotOptimize(Sani.NodeTree.contains(Doc));
  State.SetItemsProcessed(State.iterations() * Doc->size());
}
BENCHMARK(BM_LanguageMembership)->Arg(8 << 10)->Arg(64 << 10);

/// One composition of the Figure 8 transducers.
void BM_ComposeMapFilter(benchmark::State &State) {
  Session S;
  SignatureRef Sig = defo::listSignature();
  std::shared_ptr<Sttr> Map = defo::makeMapCaesar(S, Sig);
  std::shared_ptr<Sttr> Filter = defo::makeFilterEven(S, Sig);
  for (auto _ : State)
    benchmark::DoNotOptimize(
        composeSttr(S.Solv, S.Outputs, *Map, *Filter).Composed);
}
BENCHMARK(BM_ComposeMapFilter);

/// Normalization of the (alternating) well-formed-HTML language.
void BM_NormalizeHtmlLang(benchmark::State &State) {
  Session S;
  html::Sanitizer Sani = html::buildSanitizer(S);
  for (auto _ : State)
    benchmark::DoNotOptimize(normalize(S.Solv, Sani.NodeTree));
}
BENCHMARK(BM_NormalizeHtmlLang);

/// A cached vs uncached satisfiability query.
void BM_SolverIsSat(benchmark::State &State) {
  Session S;
  bool Cached = State.range(0) != 0;
  S.Solv.setCacheEnabled(Cached);
  TermRef X = S.Terms.attr(0, Sort::Int, "x");
  TermRef Pred = S.Terms.mkAnd(
      S.Terms.mkEq(S.Terms.mkMod(X, S.Terms.intConst(7)), S.Terms.intConst(3)),
      S.Terms.mkLt(X, S.Terms.intConst(100)));
  for (auto _ : State)
    benchmark::DoNotOptimize(S.Solv.isSat(Pred));
}
BENCHMARK(BM_SolverIsSat)->Arg(0)->Arg(1);

/// Guard evaluation (no solver) on a concrete label.
void BM_EvalGuard(benchmark::State &State) {
  Session S;
  TermRef X = S.Terms.attr(0, Sort::Int, "x");
  TermRef Pred = S.Terms.mkAnd(
      S.Terms.mkEq(S.Terms.mkMod(X, S.Terms.intConst(7)), S.Terms.intConst(3)),
      S.Terms.mkLt(X, S.Terms.intConst(100)));
  std::vector<Value> Attrs = {Value::integer(17)};
  for (auto _ : State)
    benchmark::DoNotOptimize(evalPredicate(Pred, Attrs));
}
BENCHMARK(BM_EvalGuard);

} // namespace

BENCHMARK_MAIN();
