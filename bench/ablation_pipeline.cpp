//===- bench/ablation_pipeline.cpp - Ablations of design choices ----------===//
//
// Measures the two implementation choices DESIGN.md calls out:
//
//  (a) lookahead simplification after composition: without it, every
//      compose adds pre-image lookahead states even when they are
//      vacuous, and n-fold pipelines slow down with n;
//  (b) the solver-side satisfiability cache keyed on hash-consed term
//      identity: disabled, every guard check pays a full solver query;
//  (c) the built-in linear-fragment decision procedure consulted before
//      Z3 (smt/SimpleSolver.h): disabled, every uncached query goes to
//      the external solver;
//  (d) the incremental SMT layer: the session-wide minterm trie
//      (smt/MintermTrie.h) and scoped push/pop solving, toggled
//      independently on a determinization-heavy type-check workload.
//
//===----------------------------------------------------------------------===//

#include "apps/ArTaggers.h"
#include "apps/Deforestation.h"
#include "automata/Determinize.h"
#include "testing/Instance.h"
#include "transducers/Ops.h"

#include <chrono>
#include <iomanip>
#include <iostream>
#include <utility>

using namespace fast;

namespace {

double msSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

void ablationLookaheadSimplification() {
  std::cout << "--- (a) lookahead simplification after composition ---\n";
  std::cout << std::left << std::setw(10) << "n" << std::setw(14)
            << "simplify" << std::right << std::setw(14) << "LA states"
            << std::setw(14) << "fusion ms" << std::setw(14) << "run ms"
            << "\n";
  for (bool Simplify : {true, false}) {
    Session S;
    SignatureRef Sig = defo::listSignature();
    TreeRef Input = defo::randomList(S, Sig, 4096, /*Seed=*/5);
    for (unsigned N : {8u, 16u, 32u, 64u}) {
      std::vector<std::shared_ptr<Sttr>> Pipeline;
      for (unsigned I = 0; I < N; ++I)
        Pipeline.push_back(defo::makeMapCaesar(S, Sig));
      auto T0 = std::chrono::steady_clock::now();
      std::shared_ptr<Sttr> Fused = Pipeline.front();
      for (size_t I = 1; I < Pipeline.size(); ++I)
        Fused = composeSttr(S.Solv, S.Outputs, *Fused, *Pipeline[I], Simplify)
                    .Composed;
      double FusionMs = msSince(T0);
      auto T1 = std::chrono::steady_clock::now();
      defo::runComposed(S, *Fused, Input);
      double RunMs = msSince(T1);
      std::cout << std::left << std::setw(10) << N << std::setw(14)
                << (Simplify ? "on" : "off") << std::right << std::setw(14)
                << Fused->lookahead().numStates() << std::setw(14)
                << std::fixed << std::setprecision(2) << FusionMs
                << std::setw(14) << RunMs << "\n";
    }
  }
}

void ablationSolverCache() {
  std::cout << "\n--- (b) satisfiability cache on hash-consed terms ---\n";
  std::cout << std::left << std::setw(10) << "cache" << std::right
            << std::setw(12) << "pairs" << std::setw(14) << "total ms"
            << std::setw(14) << "queries" << std::setw(14) << "cache hits"
            << std::setw(14) << "uncached" << "\n";
  for (bool Cache : {true, false}) {
    Session S;
    S.Solv.setCacheEnabled(Cache);
    ar::ArOptions Options;
    Options.NumTaggers = 10;
    ar::ArWorkload W = ar::generateArWorkload(S, /*Seed=*/2014, Options);
    S.Solv.resetStats();
    auto T0 = std::chrono::steady_clock::now();
    unsigned Pairs = 0;
    for (unsigned I = 0; I < W.Taggers.size(); ++I)
      for (unsigned J = I + 1; J < W.Taggers.size(); ++J) {
        ar::checkConflict(S, W, I, J);
        ++Pairs;
      }
    double TotalMs = msSince(T0);
    const Solver::Stats &St = S.Solv.stats();
    std::cout << std::left << std::setw(10) << (Cache ? "on" : "off")
              << std::right << std::setw(12) << Pairs << std::setw(14)
              << std::fixed << std::setprecision(1) << TotalMs
              << std::setw(14) << St.Queries << std::setw(14)
              << St.CacheHits << std::setw(14) << St.Queries - St.CacheHits
              << "\n";
  }
}

void ablationFastPath() {
  std::cout << "\n--- (c) built-in decision procedure before Z3 ---\n";
  std::cout << std::left << std::setw(12) << "fast path" << std::right
            << std::setw(12) << "pairs" << std::setw(14) << "total ms"
            << std::setw(14) << "nontrivial" << std::setw(16)
            << "via built-in" << std::setw(12) << "via Z3" << "\n";
  for (bool FastPath : {true, false}) {
    Session S;
    S.Solv.setFastPathEnabled(FastPath);
    ar::ArOptions Options;
    Options.NumTaggers = 10;
    ar::ArWorkload W = ar::generateArWorkload(S, /*Seed=*/2014, Options);
    S.Solv.resetStats();
    auto T0 = std::chrono::steady_clock::now();
    unsigned Pairs = 0;
    for (unsigned I = 0; I < W.Taggers.size(); ++I)
      for (unsigned J = I + 1; J < W.Taggers.size(); ++J) {
        ar::checkConflict(S, W, I, J);
        ++Pairs;
      }
    double TotalMs = msSince(T0);
    const Solver::Stats &St = S.Solv.stats();
    // Constant true/false guards short-circuit before cache and solver;
    // only the remaining nontrivial distinct predicates matter here.
    uint64_t NonTrivial = St.Queries - St.CacheHits - St.TrivialAnswers;
    std::cout << std::left << std::setw(12) << (FastPath ? "on" : "off")
              << std::right << std::setw(12) << Pairs << std::setw(14)
              << std::fixed << std::setprecision(1) << TotalMs
              << std::setw(14) << NonTrivial << std::setw(16)
              << St.FastPathAnswers << std::setw(12)
              << NonTrivial - St.FastPathAnswers << "\n";
  }
}

void ablationIncrementalSmt() {
  std::cout << "\n--- (d) minterm trie and incremental scoped solving ---\n";
  std::cout << std::left << std::setw(10) << "trie" << std::setw(10)
            << "incr" << std::right << std::setw(14) << "total ms"
            << std::setw(14) << "core checks" << std::setw(10) << "z3"
            << std::setw(12) << "subsumed" << std::setw(12) << "trie hits"
            << "\n";
  const std::pair<bool, bool> Knobs[] = {
      {false, false}, {true, false}, {true, true}};
  for (auto [Trie, Incremental] : Knobs) {
    Session S;
    S.engine().Guards.setTrieEnabled(Trie);
    S.Solv.setIncrementalEnabled(Incremental);
    // Randomized type-check/minimize pipelines: determinization-heavy,
    // so minterm enumeration dominates the solver traffic (the same
    // workload bench/smt_queries measures per configuration in full).
    auto T0 = std::chrono::steady_clock::now();
    for (unsigned Seed = 1; Seed <= 3; ++Seed) {
      fast::testing::InstanceOptions Options;
      Options.SignatureIndex = Seed % 3;
      Options.NumStates = 3 + Seed % 2;
      Options.MaxRulesPerCtor = 2 + Seed % 2;
      Options.NumSamples = 0;
      fast::testing::FuzzInstance I =
          fast::testing::makeInstance(S, Seed, Options);
      typeCheck(S.Solv, I.LangA, *I.Det1, I.LangB);
      minimizeLanguage(S.Solv, I.LangA);
    }
    double TotalMs = msSince(T0);
    const Solver::Stats &St = S.Solv.stats();
    const MintermTrie::Stats &Tr = S.engine().Guards.trie().stats();
    std::cout << std::left << std::setw(10) << (Trie ? "on" : "off")
              << std::setw(10) << (Incremental ? "on" : "off") << std::right
              << std::setw(14) << std::fixed << std::setprecision(1)
              << TotalMs << std::setw(14) << St.CoreChecks << std::setw(10)
              << St.Z3Checks + St.Z3ModelChecks << std::setw(12)
              << St.SubsumptionAnswers + Tr.SubsumptionAnswers
              << std::setw(12) << Tr.NodeHits << "\n";
  }
}

} // namespace

int main() {
  std::cout << "=== Ablations: composition cleanup, solver caching, the "
               "built-in decision procedure, and the incremental SMT "
               "layer ===\n";
  ablationLookaheadSimplification();
  ablationSolverCache();
  ablationFastPath();
  ablationIncrementalSmt();
  return 0;
}
