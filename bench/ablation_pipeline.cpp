//===- bench/ablation_pipeline.cpp - Ablations of design choices ----------===//
//
// Measures the two implementation choices DESIGN.md calls out:
//
//  (a) lookahead simplification after composition: without it, every
//      compose adds pre-image lookahead states even when they are
//      vacuous, and n-fold pipelines slow down with n;
//  (b) the solver-side satisfiability cache keyed on hash-consed term
//      identity: disabled, every guard check pays a full solver query;
//  (c) the built-in linear-fragment decision procedure consulted before
//      Z3 (smt/SimpleSolver.h): disabled, every uncached query goes to
//      the external solver.
//
//===----------------------------------------------------------------------===//

#include "apps/ArTaggers.h"
#include "apps/Deforestation.h"

#include <chrono>
#include <iomanip>
#include <iostream>

using namespace fast;

namespace {

double msSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

void ablationLookaheadSimplification() {
  std::cout << "--- (a) lookahead simplification after composition ---\n";
  std::cout << std::left << std::setw(10) << "n" << std::setw(14)
            << "simplify" << std::right << std::setw(14) << "LA states"
            << std::setw(14) << "fusion ms" << std::setw(14) << "run ms"
            << "\n";
  for (bool Simplify : {true, false}) {
    Session S;
    SignatureRef Sig = defo::listSignature();
    TreeRef Input = defo::randomList(S, Sig, 4096, /*Seed=*/5);
    for (unsigned N : {8u, 16u, 32u, 64u}) {
      std::vector<std::shared_ptr<Sttr>> Pipeline;
      for (unsigned I = 0; I < N; ++I)
        Pipeline.push_back(defo::makeMapCaesar(S, Sig));
      auto T0 = std::chrono::steady_clock::now();
      std::shared_ptr<Sttr> Fused = Pipeline.front();
      for (size_t I = 1; I < Pipeline.size(); ++I)
        Fused = composeSttr(S.Solv, S.Outputs, *Fused, *Pipeline[I], Simplify)
                    .Composed;
      double FusionMs = msSince(T0);
      auto T1 = std::chrono::steady_clock::now();
      defo::runComposed(S, *Fused, Input);
      double RunMs = msSince(T1);
      std::cout << std::left << std::setw(10) << N << std::setw(14)
                << (Simplify ? "on" : "off") << std::right << std::setw(14)
                << Fused->lookahead().numStates() << std::setw(14)
                << std::fixed << std::setprecision(2) << FusionMs
                << std::setw(14) << RunMs << "\n";
    }
  }
}

void ablationSolverCache() {
  std::cout << "\n--- (b) satisfiability cache on hash-consed terms ---\n";
  std::cout << std::left << std::setw(10) << "cache" << std::right
            << std::setw(12) << "pairs" << std::setw(14) << "total ms"
            << std::setw(14) << "queries" << std::setw(14) << "cache hits"
            << std::setw(14) << "uncached" << "\n";
  for (bool Cache : {true, false}) {
    Session S;
    S.Solv.setCacheEnabled(Cache);
    ar::ArOptions Options;
    Options.NumTaggers = 10;
    ar::ArWorkload W = ar::generateArWorkload(S, /*Seed=*/2014, Options);
    S.Solv.resetStats();
    auto T0 = std::chrono::steady_clock::now();
    unsigned Pairs = 0;
    for (unsigned I = 0; I < W.Taggers.size(); ++I)
      for (unsigned J = I + 1; J < W.Taggers.size(); ++J) {
        ar::checkConflict(S, W, I, J);
        ++Pairs;
      }
    double TotalMs = msSince(T0);
    const Solver::Stats &St = S.Solv.stats();
    std::cout << std::left << std::setw(10) << (Cache ? "on" : "off")
              << std::right << std::setw(12) << Pairs << std::setw(14)
              << std::fixed << std::setprecision(1) << TotalMs
              << std::setw(14) << St.Queries << std::setw(14)
              << St.CacheHits << std::setw(14) << St.Queries - St.CacheHits
              << "\n";
  }
}

void ablationFastPath() {
  std::cout << "\n--- (c) built-in decision procedure before Z3 ---\n";
  std::cout << std::left << std::setw(12) << "fast path" << std::right
            << std::setw(12) << "pairs" << std::setw(14) << "total ms"
            << std::setw(14) << "nontrivial" << std::setw(16)
            << "via built-in" << std::setw(12) << "via Z3" << "\n";
  for (bool FastPath : {true, false}) {
    Session S;
    S.Solv.setFastPathEnabled(FastPath);
    ar::ArOptions Options;
    Options.NumTaggers = 10;
    ar::ArWorkload W = ar::generateArWorkload(S, /*Seed=*/2014, Options);
    S.Solv.resetStats();
    auto T0 = std::chrono::steady_clock::now();
    unsigned Pairs = 0;
    for (unsigned I = 0; I < W.Taggers.size(); ++I)
      for (unsigned J = I + 1; J < W.Taggers.size(); ++J) {
        ar::checkConflict(S, W, I, J);
        ++Pairs;
      }
    double TotalMs = msSince(T0);
    const Solver::Stats &St = S.Solv.stats();
    // Constant true/false guards short-circuit before cache and solver;
    // only the remaining nontrivial distinct predicates matter here.
    uint64_t NonTrivial = St.Queries - St.CacheHits - St.TrivialAnswers;
    std::cout << std::left << std::setw(12) << (FastPath ? "on" : "off")
              << std::right << std::setw(12) << Pairs << std::setw(14)
              << std::fixed << std::setprecision(1) << TotalMs
              << std::setw(14) << NonTrivial << std::setw(16)
              << St.FastPathAnswers << std::setw(12)
              << NonTrivial - St.FastPathAnswers << "\n";
  }
}

} // namespace

int main() {
  std::cout << "=== Ablations: composition cleanup, solver caching, and "
               "the built-in decision procedure ===\n";
  ablationLookaheadSimplification();
  ablationSolverCache();
  ablationFastPath();
  return 0;
}
