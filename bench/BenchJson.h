//===- bench/BenchJson.h - Machine-readable benchmark output ----*- C++ -*-===//
//
// Shared helper for the figure-level benchmarks: appends records to a JSON
// file (one record per line inside a top-level array) so repeated runs of
// different figures merge into one BENCH_figs.json.  A record carries the
// benchmark name, the problem size, the wall time, and the session's
// engine-stats object (StatsRegistry::json()).
//
// Re-running a benchmark replaces its own earlier records (matched by the
// "source" tag) and leaves records from other sources untouched.
//
//===----------------------------------------------------------------------===//

#ifndef FAST_BENCH_BENCHJSON_H
#define FAST_BENCH_BENCHJSON_H

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace fast::bench {

class BenchJsonWriter {
public:
  /// Records will be written to \p Path; every record is tagged with
  /// \p Source, and existing records with the same tag are dropped.
  BenchJsonWriter(std::string Path, std::string Source)
      : Path(std::move(Path)), Source(std::move(Source)) {}

  /// Queue one record.  \p EngineStatsJson must be a JSON object (use
  /// StatsRegistry::json(), or "{}" when no stats apply).
  void add(const std::string &Name, long N, double WallMs,
           const std::string &EngineStatsJson) {
    std::ostringstream Line;
    Line << "{\"source\":\"" << Source << "\",\"name\":\"" << Name
         << "\",\"n\":" << N << ",\"wall_ms\":" << WallMs
         << ",\"engine\":" << EngineStatsJson << "}";
    Records.push_back(Line.str());
  }

  /// Merge the queued records into the file and report where they went.
  /// Returns false (leaving no partial file) if the file cannot be written.
  bool flush() {
    // Keep every existing record line that belongs to another source.
    std::vector<std::string> Kept;
    std::ifstream In(Path);
    std::string Tag = "\"source\":\"" + Source + "\"";
    for (std::string Line; std::getline(In, Line);)
      if (Line.size() > 1 && Line[0] == '{' &&
          Line.find(Tag) == std::string::npos)
        Kept.push_back(stripTrailingComma(Line));
    In.close();

    std::ofstream Out(Path, std::ios::trunc);
    if (!Out)
      return false;
    Out << "[\n";
    size_t Total = Kept.size() + Records.size(), I = 0;
    for (const std::string &Line : Kept)
      Out << Line << (++I < Total ? "," : "") << "\n";
    for (const std::string &Line : Records)
      Out << Line << (++I < Total ? "," : "") << "\n";
    Out << "]\n";
    return static_cast<bool>(Out);
  }

  const std::string &path() const { return Path; }

private:
  static std::string stripTrailingComma(std::string Line) {
    if (!Line.empty() && Line.back() == ',')
      Line.pop_back();
    return Line;
  }

  std::string Path;
  std::string Source;
  std::vector<std::string> Records;
};

} // namespace fast::bench

#endif // FAST_BENCH_BENCHJSON_H
