# Runs fastc with tracing enabled on a real program, then validates the
# produced trace with trace_check.  Invoked by the obs.smoke ctest as
#   cmake -DFASTC=... -DTRACE_CHECK=... -DPROGRAM=... -DOUT_DIR=... -P obs_smoke.cmake
#
# sanitizer.fast intentionally fails one assertion, so fastc exiting 1 is
# expected; only exit codes >= 2 (usage/IO errors) fail the smoke test.

foreach(Var FASTC TRACE_CHECK PROGRAM OUT_DIR)
  if(NOT DEFINED ${Var})
    message(FATAL_ERROR "obs_smoke.cmake: -D${Var}=... is required")
  endif()
endforeach()

file(MAKE_DIRECTORY "${OUT_DIR}")

foreach(Trace obs_smoke.json obs_smoke.jsonl)
  set(TraceFile "${OUT_DIR}/${Trace}")
  execute_process(
    COMMAND "${FASTC}" "--trace=${TraceFile}" --stats "${PROGRAM}"
    RESULT_VARIABLE RunResult
    OUTPUT_VARIABLE RunOut
    ERROR_VARIABLE RunErr)
  if(RunResult GREATER 1)
    message(FATAL_ERROR
      "fastc --trace=${TraceFile} failed (exit ${RunResult}):\n${RunOut}${RunErr}")
  endif()
  execute_process(
    COMMAND "${TRACE_CHECK}" "${TraceFile}"
    RESULT_VARIABLE CheckResult
    OUTPUT_VARIABLE CheckOut
    ERROR_VARIABLE CheckErr)
  if(NOT CheckResult EQUAL 0)
    message(FATAL_ERROR
      "trace_check rejected ${TraceFile} (exit ${CheckResult}):\n${CheckOut}${CheckErr}")
  endif()
  # The summary must confirm the counter-delta and per-lane monotonicity
  # checks actually ran (a regression that skips them would still exit 0).
  if(NOT CheckOut MATCHES "counter delta\\(s\\) non-negative" OR
     NOT CheckOut MATCHES "thread lane\\(s\\) monotone")
    message(FATAL_ERROR
      "trace_check summary for ${TraceFile} lacks the delta/monotonicity "
      "confirmation:\n${CheckOut}")
  endif()
  message(STATUS "${Trace}: ${CheckOut}")
endforeach()
