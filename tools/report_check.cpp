//===- tools/report_check.cpp - HTML session-report validator -------------===//
//
// Validates a report produced by `fastc --report=out.html`:
//
//   report_check [--require-substring TEXT]... <report.html>
//
// Extracts the embedded JSON island
//   <script type="application/json" id="fast-report-data"> ... </script>
// undoes the "<\/" escaping, parses it with JsonCheck, and requires the
// island to be an object carrying the keys the inline renderer reads:
// "title", "events", "stats", "coverage", "assertions", "witnesses", and
// "slow_queries" — with "events", "coverage", "assertions", and
// "witnesses" being arrays.  Each --require-substring TEXT must occur
// somewhere in the raw island text (the report.smoke test uses this to
// assert the known sanitizer witness and rule citation are embedded).
//
// Exit status: 0 valid, 1 invalid, 2 usage/IO error.  Prints a one-line
// summary on success so the smoke test has something to match.
//
//===----------------------------------------------------------------------===//

#include "obs/JsonCheck.h"

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using fast::obs::json::Value;

int main(int Argc, char **Argv) {
  std::vector<std::string> Required;
  const char *Path = nullptr;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--require-substring") == 0 && I + 1 < Argc)
      Required.push_back(Argv[++I]);
    else if (!Path)
      Path = Argv[I];
    else
      Path = nullptr;
  }
  if (!Path) {
    std::cerr << "usage: report_check [--require-substring TEXT]... "
                 "<report.html>\n";
    return 2;
  }
  std::ifstream File(Path);
  if (!File) {
    std::cerr << "report_check: cannot open '" << Path << "'\n";
    return 2;
  }
  std::stringstream Buffer;
  Buffer << File.rdbuf();
  const std::string Html = Buffer.str();

  const std::string Open =
      "<script type=\"application/json\" id=\"fast-report-data\">";
  size_t Start = Html.find(Open);
  if (Start == std::string::npos) {
    std::cerr << "report_check: " << Path
              << ": no fast-report-data JSON island\n";
    return 1;
  }
  Start += Open.size();
  size_t End = Html.find("</script>", Start);
  if (End == std::string::npos) {
    std::cerr << "report_check: " << Path
              << ": JSON island is not closed by </script>\n";
    return 1;
  }
  std::string Island = Html.substr(Start, End - Start);
  // Undo the island escaping ("</" is written as "<\/" so a witness string
  // cannot terminate the script element early).
  for (size_t Pos = 0; (Pos = Island.find("<\\/", Pos)) != std::string::npos;)
    Island.erase(Pos + 1, 1);

  std::string ParseError;
  std::optional<Value> Data = fast::obs::json::parse(Island, &ParseError);
  if (!Data) {
    std::cerr << "report_check: " << Path << ": island is bad JSON: "
              << ParseError << "\n";
    return 1;
  }
  if (!Data->isObject()) {
    std::cerr << "report_check: " << Path << ": island is not an object\n";
    return 1;
  }
  struct KeySpec {
    const char *Key;
    bool Array;
  };
  const KeySpec Keys[] = {
      {"title", false},     {"events", true},     {"stats", false},
      {"coverage", true},   {"assertions", true}, {"witnesses", true},
      {"slow_queries", false},
  };
  size_t EmbeddedEvents = 0;
  for (const KeySpec &K : Keys) {
    const Value *V = Data->find(K.Key);
    if (!V) {
      std::cerr << "report_check: " << Path << ": island lacks key \""
                << K.Key << "\"\n";
      return 1;
    }
    if (K.Array && !V->isArray()) {
      std::cerr << "report_check: " << Path << ": island key \"" << K.Key
                << "\" is not an array\n";
      return 1;
    }
    if (std::strcmp(K.Key, "events") == 0)
      EmbeddedEvents = V->Items.size();
  }
  for (const std::string &Text : Required) {
    if (Island.find(Text) == std::string::npos) {
      std::cerr << "report_check: " << Path
                << ": island lacks required substring \"" << Text << "\"\n";
      return 1;
    }
  }
  std::cout << "report_check: OK: " << EmbeddedEvents << " embedded event(s), "
            << Data->find("assertions")->Items.size() << " assertion(s), "
            << Data->find("witnesses")->Items.size() << " witness(es), "
            << Required.size() << " required substring(s) present\n";
  return 0;
}
