# Runs fastc --report (plus --explain) on a real program, then validates
# the produced single-file HTML report with report_check.  Invoked by the
# report.smoke ctest as
#   cmake -DFASTC=... -DREPORT_CHECK=... -DPROGRAM=... -DOUT_DIR=... -P report_smoke.cmake
#
# sanitizer.fast intentionally fails one assertion, so fastc exiting 1 is
# expected; only exit codes >= 2 (usage/IO errors) fail the smoke test.
# The known Figure-2 counterexample must be embedded: the witness tree
# (a nested "script" node survives sanitization) and the rule-coverage
# entry for the buggy remScript rewrite rule.

foreach(Var FASTC REPORT_CHECK PROGRAM OUT_DIR)
  if(NOT DEFINED ${Var})
    message(FATAL_ERROR "report_smoke.cmake: -D${Var}=... is required")
  endif()
endforeach()

file(MAKE_DIRECTORY "${OUT_DIR}")
set(ReportFile "${OUT_DIR}/report_smoke.html")

execute_process(
  COMMAND "${FASTC}" "--report=${ReportFile}" --explain --stats "${PROGRAM}"
  RESULT_VARIABLE RunResult
  OUTPUT_VARIABLE RunOut
  ERROR_VARIABLE RunErr)
if(RunResult GREATER 1)
  message(FATAL_ERROR
    "fastc --report=${ReportFile} failed (exit ${RunResult}):\n${RunOut}${RunErr}")
endif()

execute_process(
  COMMAND "${REPORT_CHECK}"
          --require-substring "remScript"
          --require-substring "script"
          "${ReportFile}"
  RESULT_VARIABLE CheckResult
  OUTPUT_VARIABLE CheckOut
  ERROR_VARIABLE CheckErr)
if(NOT CheckResult EQUAL 0)
  message(FATAL_ERROR
    "report_check rejected ${ReportFile} (exit ${CheckResult}):\n${CheckOut}${CheckErr}")
endif()
message(STATUS "report_smoke.html: ${CheckOut}")
