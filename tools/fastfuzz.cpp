//===- tools/fastfuzz.cpp - Differential fuzzing driver -------------------===//
//
// Runs N seeded rounds of the differential testing harness: each round
// generates random languages, transducers, and sample trees, then checks
// the registered algebraic laws (complement, connectives, representation
// changes, Theorem 4 composition, pre-image, domain, type-check, and the
// truncation signal itself) by cross-validating the symbolic constructions
// against direct concrete evaluation.  Failures are shrunk greedily and
// dumped as self-contained repro directories.
//
// Usage:  fastfuzz [options]
//   --rounds=N            number of seeded rounds (default 200)
//   --seed=N              base seed; round R uses seed N+R (default 1)
//   --oracle=NAME         run only this oracle (repeatable)
//   --repro-dir=PATH      dump repro directories for failures
//   --max-outputs=N       per-(state,node) transduction output bound
//   --max-exploration=N   engine state budget per oracle run; instances
//                         that blow it are skipped, not failed (0 = off)
//   --ignore-truncation   treat truncated output sets as complete
//                         (re-introduces the historical bug; for testing
//                         the harness itself)
//   --no-shrink           report failures without minimizing them
//   --stop-on-failure     exit after the first failing round
//   --list                list the registered oracles and exit
//
// Exit status: 0 iff every check passed.
//
//===----------------------------------------------------------------------===//

#include "testing/Fuzzer.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iostream>

using namespace fast::testing;

namespace {

bool parseUnsigned(const char *Text, unsigned long &Out) {
  char *End = nullptr;
  errno = 0;
  Out = std::strtoul(Text, &End, 10);
  return errno == 0 && End != Text && *End == '\0';
}

} // namespace

int main(int Argc, char **Argv) {
  FuzzConfig Config;
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    unsigned long N = 0;
    if (std::strncmp(Arg, "--rounds=", 9) == 0 && parseUnsigned(Arg + 9, N)) {
      Config.Rounds = static_cast<unsigned>(N);
    } else if (std::strncmp(Arg, "--seed=", 7) == 0 &&
               parseUnsigned(Arg + 7, N)) {
      Config.Seed = static_cast<unsigned>(N);
    } else if (std::strncmp(Arg, "--oracle=", 9) == 0) {
      if (!findOracle(Arg + 9)) {
        std::cerr << "fastfuzz: unknown oracle '" << (Arg + 9)
                  << "' (use --list)\n";
        return 2;
      }
      Config.Oracles.push_back(Arg + 9);
    } else if (std::strncmp(Arg, "--repro-dir=", 12) == 0) {
      Config.ReproDir = Arg + 12;
    } else if (std::strncmp(Arg, "--max-outputs=", 14) == 0 &&
               parseUnsigned(Arg + 14, N)) {
      Config.Run.MaxOutputs = N;
    } else if (std::strncmp(Arg, "--max-exploration=", 18) == 0 &&
               parseUnsigned(Arg + 18, N)) {
      Config.Run.MaxExplorationStates = N;
    } else if (std::strcmp(Arg, "--ignore-truncation") == 0) {
      Config.Run.IgnoreTruncation = true;
    } else if (std::strcmp(Arg, "--no-shrink") == 0) {
      Config.Shrink = false;
    } else if (std::strcmp(Arg, "--stop-on-failure") == 0) {
      Config.StopOnFailure = true;
    } else if (std::strcmp(Arg, "--list") == 0) {
      for (const Oracle &O : allOracles())
        std::cout << O.Name << "\n    " << O.Law << "\n";
      return 0;
    } else {
      std::cerr << "fastfuzz: bad argument '" << Arg << "'\n"
                << "usage: fastfuzz [--rounds=N] [--seed=N] [--oracle=NAME]\n"
                << "                [--repro-dir=PATH] [--max-outputs=N]\n"
                << "                [--max-exploration=N]\n"
                << "                [--ignore-truncation] [--no-shrink]\n"
                << "                [--stop-on-failure] [--list]\n";
      return 2;
    }
  }

  FuzzReport Report = runFuzz(Config, &std::cerr);
  std::cout << "fastfuzz: " << Report.RoundsRun << " rounds, "
            << Report.ChecksRun << " checks (" << Report.ChecksSkipped
            << " over budget), " << Report.Failures.size() << " failures\n";
  for (const FuzzFailure &F : Report.Failures) {
    std::cout << "FAIL " << F.OracleName << " seed=" << F.Seed << ": "
              << F.Message << "\n";
    if (F.ShrinkSteps != 0)
      std::cout << "  minimized (" << F.ShrinkSteps
                << " steps): " << F.MinimizedMessage << "\n";
    if (!F.ReproPath.empty())
      std::cout << "  repro: " << F.ReproPath << "\n";
  }
  return Report.ok() ? 0 : 1;
}
