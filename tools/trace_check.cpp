//===- tools/trace_check.cpp - Trace-file validator -----------------------===//
//
// Validates a trace produced by the obs layer (fastc --trace, FAST_TRACE):
//
//   trace_check <trace.json | trace.jsonl>
//
// Accepts both sink formats — a Chrome trace-event JSON array (anything not
// ending in ".jsonl") and streaming JSONL (one event object per line) — and
// checks the invariants Perfetto and our own tools rely on:
//
//   * the file parses as JSON (every line, for JSONL);
//   * every event is an object with string "name"/"cat"/"ph", numeric
//     "ts", and an "args" object;
//   * 'B'/'E' events balance like a well-formed span stack, with each 'E'
//     naming the innermost open 'B';
//   * timestamps never go backwards in file order within one thread lane
//     (grouped by "tid"; events without one share a default lane);
//   * 'X' (complete) events carry a non-negative numeric "dur";
//   * every "construction" span end carries its counter deltas (the
//     states_explored attribute is the canary), and every numeric counter
//     attached to such an end is non-negative (deltas of monotone
//     counters can never go backwards).
//
// Exit status: 0 valid, 1 invalid, 2 usage/IO error.  Prints a one-line
// summary on success so the obs.smoke test has something to match.
//
//===----------------------------------------------------------------------===//

#include "obs/JsonCheck.h"

#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

using fast::obs::json::Value;

namespace {

struct Validator {
  std::vector<std::string> SpanStack;
  size_t Events = 0;
  size_t MaxDepth = 0;
  size_t Constructions = 0;
  size_t CountersChecked = 0;
  /// Last timestamp seen per thread lane ("tid"; default lane 1).
  std::map<double, double> LastTsByTid;
  std::string Error;

  bool fail(const std::string &Message) {
    Error = "event " + std::to_string(Events + 1) + ": " + Message;
    return false;
  }

  bool event(const Value &E) {
    if (!E.isObject())
      return fail("not a JSON object");
    const Value *Name = E.find("name");
    const Value *Cat = E.find("cat");
    const Value *Ph = E.find("ph");
    const Value *Ts = E.find("ts");
    const Value *Args = E.find("args");
    if (!Name || !Name->isString())
      return fail("missing string \"name\"");
    if (!Cat || !Cat->isString())
      return fail("missing string \"cat\"");
    if (!Ph || !Ph->isString() || Ph->Str.size() != 1)
      return fail("missing one-character \"ph\"");
    if (!Ts || !Ts->isNumber())
      return fail("missing numeric \"ts\"");
    if (!Args || !Args->isObject())
      return fail("missing object \"args\"");
    const Value *Tid = E.find("tid");
    double Lane = Tid && Tid->isNumber() ? Tid->Num : 1;
    auto [It, Fresh] = LastTsByTid.try_emplace(Lane, Ts->Num);
    if (!Fresh) {
      if (Ts->Num < It->second)
        return fail("timestamp goes backwards on tid " +
                    std::to_string(static_cast<long long>(Lane)) + " (" +
                    std::to_string(Ts->Num) + " after " +
                    std::to_string(It->second) + ")");
      It->second = Ts->Num;
    }

    switch (Ph->Str[0]) {
    case 'B':
      SpanStack.push_back(Name->Str);
      MaxDepth = std::max(MaxDepth, SpanStack.size());
      break;
    case 'E': {
      if (SpanStack.empty())
        return fail("'E' for \"" + Name->Str + "\" with no open span");
      if (SpanStack.back() != Name->Str)
        return fail("'E' for \"" + Name->Str + "\" but innermost span is \"" +
                    SpanStack.back() + "\"");
      SpanStack.pop_back();
      if (Cat->Str == "construction") {
        ++Constructions;
        const Value *Delta = Args->find("states_explored");
        if (!Delta || !Delta->isNumber())
          return fail("construction span end for \"" + Name->Str +
                      "\" lacks counter deltas (states_explored)");
        for (const auto &[Key, Arg] : Args->Members)
          if (Arg.isNumber()) {
            if (Arg.Num < 0)
              return fail("construction span end for \"" + Name->Str +
                          "\" has negative counter delta \"" + Key + "\" (" +
                          std::to_string(Arg.Num) + ")");
            ++CountersChecked;
          }
      }
      break;
    }
    case 'X': {
      const Value *Dur = E.find("dur");
      if (!Dur || !Dur->isNumber() || Dur->Num < 0)
        return fail("'X' event \"" + Name->Str +
                    "\" lacks a non-negative \"dur\"");
      break;
    }
    case 'i':
      break;
    default:
      return fail(std::string("unknown phase '") + Ph->Str + "'");
    }
    ++Events;
    return true;
  }

  bool finish() {
    if (!SpanStack.empty()) {
      Error = "unbalanced trace: " + std::to_string(SpanStack.size()) +
              " span(s) left open, innermost \"" + SpanStack.back() + "\"";
      return false;
    }
    return true;
  }
};

bool endsWith(const std::string &Text, const char *Suffix) {
  size_t N = std::strlen(Suffix);
  return Text.size() >= N && Text.compare(Text.size() - N, N, Suffix) == 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc != 2) {
    std::cerr << "usage: trace_check <trace.json | trace.jsonl>\n";
    return 2;
  }
  const std::string Path = Argv[1];
  std::ifstream File(Path);
  if (!File) {
    std::cerr << "trace_check: cannot open '" << Path << "'\n";
    return 2;
  }

  Validator V;
  std::string ParseError;
  if (endsWith(Path, ".jsonl")) {
    std::string Line;
    size_t LineNo = 0;
    while (std::getline(File, Line)) {
      ++LineNo;
      if (Line.empty())
        continue;
      auto Parsed = fast::obs::json::parse(Line, &ParseError);
      if (!Parsed) {
        std::cerr << "trace_check: " << Path << ":" << LineNo
                  << ": bad JSON: " << ParseError << "\n";
        return 1;
      }
      if (!V.event(*Parsed)) {
        std::cerr << "trace_check: " << Path << ":" << LineNo << ": "
                  << V.Error << "\n";
        return 1;
      }
    }
  } else {
    std::stringstream Buffer;
    Buffer << File.rdbuf();
    auto Parsed = fast::obs::json::parse(Buffer.str(), &ParseError);
    if (!Parsed) {
      std::cerr << "trace_check: " << Path << ": bad JSON: " << ParseError
                << "\n";
      return 1;
    }
    if (!Parsed->isArray()) {
      std::cerr << "trace_check: " << Path
                << ": top-level value is not an array\n";
      return 1;
    }
    for (const Value &E : Parsed->Items)
      if (!V.event(E)) {
        std::cerr << "trace_check: " << Path << ": " << V.Error << "\n";
        return 1;
      }
  }
  if (!V.finish()) {
    std::cerr << "trace_check: " << Path << ": " << V.Error << "\n";
    return 1;
  }
  std::cout << "trace_check: OK: " << V.Events << " events, "
            << V.Constructions << " construction span(s), max depth "
            << V.MaxDepth << ", " << V.CountersChecked
            << " counter delta(s) non-negative, " << V.LastTsByTid.size()
            << " thread lane(s) monotone\n";
  return 0;
}
