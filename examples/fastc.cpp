//===- examples/fastc.cpp - Command-line Fast interpreter -----------------===//
//
// Runs a .fast program: compiles the declarations, evaluates the defs, and
// reports every assertion with its witness when one fails.
//
// Usage:  fastc [--dump] [--stats] [--stats-json] [--trace=FILE]
//               [--progress] [--export NAME] <program.fast>
//   --dump         also print every compiled language automaton and
//                  transformation (states, rules, guards).
//   --stats        print the exploration-engine statistics (states
//                  explored, rules emitted, cache hit rates, query-latency
//                  percentiles) per construction after the program runs,
//                  followed by the slowest solver queries of the session.
//   --stats-json   print the same statistics as one machine-readable JSON
//                  object on stdout.
//   --trace=FILE   record a trace of the run: construction spans,
//                  exploration batches, minterm splits, and individual
//                  solver checks.  FILE ending in ".jsonl" streams one
//                  JSON event per line (flushed per event); any other
//                  extension writes a Chrome trace-event JSON array
//                  loadable in Perfetto / chrome://tracing.
//   --progress     print a heartbeat line to stderr while long
//                  explorations run (states explored, frontier,
//                  states/sec).
//   --export NAME  print the named language/transformation as a
//                  standalone, recompilable Fast program.
//
//===----------------------------------------------------------------------===//

#include "fast/Export.h"
#include "fast/Fast.h"

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace fast;

int main(int Argc, char **Argv) {
  bool Dump = false;
  bool Stats = false;
  bool StatsJson = false;
  bool Progress = false;
  const char *TracePath = nullptr;
  const char *ExportName = nullptr;
  const char *Path = nullptr;
  bool Bad = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--dump") == 0)
      Dump = true;
    else if (std::strcmp(Argv[I], "--stats") == 0)
      Stats = true;
    else if (std::strcmp(Argv[I], "--stats-json") == 0)
      StatsJson = true;
    else if (std::strcmp(Argv[I], "--progress") == 0)
      Progress = true;
    else if (std::strncmp(Argv[I], "--trace=", 8) == 0)
      TracePath = Argv[I] + 8;
    else if (std::strcmp(Argv[I], "--export") == 0 && I + 1 < Argc)
      ExportName = Argv[++I];
    else if (!Path)
      Path = Argv[I];
    else
      Bad = true;
  }
  if (!Path || Bad) {
    std::cerr << "usage: fastc [--dump] [--stats] [--stats-json] "
                 "[--trace=FILE] [--progress] [--export NAME] "
                 "<program.fast>\n";
    return 2;
  }
  std::ifstream File(Path);
  if (!File) {
    std::cerr << "fastc: cannot open '" << Path << "'\n";
    return 2;
  }
  std::stringstream Buffer;
  Buffer << File.rdbuf();

  Session S;
  if (TracePath && !S.tracer().openTrace(TracePath)) {
    std::cerr << "fastc: cannot open trace file '" << TracePath << "'\n";
    return 2;
  }
  if (Progress)
    S.tracer().setProgressStream(&std::cerr);

  FastProgramResult R = runFastProgram(S, Buffer.str());
  if (TracePath)
    S.tracer().closeTrace();
  if (!R.DiagText.empty())
    std::cerr << R.DiagText;
  if (R.ErrorCount != 0)
    return 1;

  if (ExportName) {
    auto It = R.Values.find(ExportName);
    if (It == R.Values.end()) {
      std::cerr << "fastc: no language or transformation named '"
                << ExportName << "'\n";
      return 2;
    }
    if (It->second.K == FastValue::Kind::Lang)
      std::cout << exportLanguageProgram(ExportName, It->second.Lang);
    else if (It->second.K == FastValue::Kind::Trans)
      std::cout << exportSttrProgram(ExportName, *It->second.Trans);
    else
      std::cout << It->second.Tree->str() << "\n";
    return 0;
  }

  if (Dump) {
    for (const auto &[Name, V] : R.Values) {
      if (V.K == FastValue::Kind::Lang) {
        std::cout << "--- language " << Name << " (roots:";
        for (unsigned Root : V.Lang.roots())
          std::cout << ' ' << V.Lang.automaton().stateName(Root);
        std::cout << ") ---\n" << V.Lang.automaton().str();
      } else if (V.K == FastValue::Kind::Trans) {
        std::cout << "--- transformation " << Name << " ---\n"
                  << V.Trans->str();
        if (V.Trans->lookahead().numStates() != 0)
          std::cout << "lookahead " << V.Trans->lookahead().str();
      } else if (V.K == FastValue::Kind::Tree) {
        std::cout << "--- tree " << Name << " ---\n"
                  << V.Tree->str() << "\n";
      }
    }
  }

  for (const AssertionOutcome &A : R.Assertions) {
    std::cout << Path << ":" << A.Loc.str() << ": assert-"
              << (A.Expected ? "true" : "false") << " "
              << (A.passed() ? "PASSED" : "FAILED");
    if (!A.passed() && !A.Detail.empty())
      std::cout << "  [" << A.Detail << "]";
    std::cout << "\n";
  }
  unsigned Failed = R.failedAssertions();
  std::cout << R.Assertions.size() << " assertion(s), " << Failed
            << " failed\n";
  if (Stats) {
    std::cout << S.stats().report();
    const Solver::Stats &Q = S.Solv.stats();
    std::cout << "solver: " << Q.Queries << " queries, " << Q.CacheHits
              << " cache-hits, " << Q.CoreChecks << " core-checks, "
              << Q.Z3Checks << " z3-checks, " << Q.FastPathAnswers
              << " fast-path, " << Q.ScopedChecks << " scoped-checks, "
              << Q.LiteralsAsserted << " literals-asserted, "
              << Q.SubsumptionAnswers << " subsumption-answers\n";
    std::cout << S.tracer().slowQueries().report();
  }
  if (StatsJson)
    std::cout << S.stats().json() << "\n";
  return Failed == 0 ? 0 : 1;
}
