//===- examples/fastc.cpp - Command-line Fast interpreter -----------------===//
//
// Runs a .fast program: compiles the declarations, evaluates the defs, and
// reports every assertion with its witness when one fails.
//
// Usage:  fastc [--dump] [--stats] [--export NAME] <program.fast>
//   --dump         also print every compiled language automaton and
//                  transformation (states, rules, guards).
//   --stats        print the exploration-engine statistics (states
//                  explored, rules emitted, cache hit rates) per
//                  construction after the program runs.
//   --export NAME  print the named language/transformation as a
//                  standalone, recompilable Fast program.
//
//===----------------------------------------------------------------------===//

#include "fast/Export.h"
#include "fast/Fast.h"

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace fast;

int main(int Argc, char **Argv) {
  bool Dump = false;
  bool Stats = false;
  const char *ExportName = nullptr;
  const char *Path = nullptr;
  bool Bad = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--dump") == 0)
      Dump = true;
    else if (std::strcmp(Argv[I], "--stats") == 0)
      Stats = true;
    else if (std::strcmp(Argv[I], "--export") == 0 && I + 1 < Argc)
      ExportName = Argv[++I];
    else if (!Path)
      Path = Argv[I];
    else
      Bad = true;
  }
  if (!Path || Bad) {
    std::cerr
        << "usage: fastc [--dump] [--stats] [--export NAME] <program.fast>\n";
    return 2;
  }
  std::ifstream File(Path);
  if (!File) {
    std::cerr << "fastc: cannot open '" << Path << "'\n";
    return 2;
  }
  std::stringstream Buffer;
  Buffer << File.rdbuf();

  Session S;
  FastProgramResult R = runFastProgram(S, Buffer.str());
  if (!R.DiagText.empty())
    std::cerr << R.DiagText;
  if (R.ErrorCount != 0)
    return 1;

  if (ExportName) {
    auto It = R.Values.find(ExportName);
    if (It == R.Values.end()) {
      std::cerr << "fastc: no language or transformation named '"
                << ExportName << "'\n";
      return 2;
    }
    if (It->second.K == FastValue::Kind::Lang)
      std::cout << exportLanguageProgram(ExportName, It->second.Lang);
    else if (It->second.K == FastValue::Kind::Trans)
      std::cout << exportSttrProgram(ExportName, *It->second.Trans);
    else
      std::cout << It->second.Tree->str() << "\n";
    return 0;
  }

  if (Dump) {
    for (const auto &[Name, V] : R.Values) {
      if (V.K == FastValue::Kind::Lang) {
        std::cout << "--- language " << Name << " (roots:";
        for (unsigned Root : V.Lang.roots())
          std::cout << ' ' << V.Lang.automaton().stateName(Root);
        std::cout << ") ---\n" << V.Lang.automaton().str();
      } else if (V.K == FastValue::Kind::Trans) {
        std::cout << "--- transformation " << Name << " ---\n"
                  << V.Trans->str();
        if (V.Trans->lookahead().numStates() != 0)
          std::cout << "lookahead " << V.Trans->lookahead().str();
      } else if (V.K == FastValue::Kind::Tree) {
        std::cout << "--- tree " << Name << " ---\n"
                  << V.Tree->str() << "\n";
      }
    }
  }

  for (const AssertionOutcome &A : R.Assertions) {
    std::cout << Path << ":" << A.Loc.str() << ": assert-"
              << (A.Expected ? "true" : "false") << " "
              << (A.passed() ? "PASSED" : "FAILED");
    if (!A.passed() && !A.Detail.empty())
      std::cout << "  [" << A.Detail << "]";
    std::cout << "\n";
  }
  unsigned Failed = R.failedAssertions();
  std::cout << R.Assertions.size() << " assertion(s), " << Failed
            << " failed\n";
  if (Stats) {
    std::cout << S.stats().report();
    const Solver::Stats &Q = S.Solv.stats();
    std::cout << "solver: " << Q.Queries << " queries, " << Q.CacheHits
              << " cache-hits, " << Q.CoreChecks << " core-checks, "
              << Q.Z3Checks << " z3-checks, " << Q.FastPathAnswers
              << " fast-path, " << Q.ScopedChecks << " scoped-checks, "
              << Q.LiteralsAsserted << " literals-asserted, "
              << Q.SubsumptionAnswers << " subsumption-answers\n";
  }
  return Failed == 0 ? 0 : 1;
}
