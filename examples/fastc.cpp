//===- examples/fastc.cpp - Command-line Fast interpreter -----------------===//
//
// Runs a .fast program: compiles the declarations, evaluates the defs, and
// reports every assertion with its witness when one fails.
//
// Usage:  fastc [--dump] [--stats] [--stats-json] [--trace=FILE]
//               [--explain] [--report=FILE] [--progress[=MS]]
//               [--export NAME] [-j N] <program.fast>
//   --dump         also print every compiled language automaton and
//                  transformation (states, rules, guards).
//   --stats        print the exploration-engine statistics (states
//                  explored, rules emitted, cache hit rates, query-latency
//                  percentiles) per construction after the program runs,
//                  followed by the slowest solver queries of the session.
//   --stats-json   print the same statistics as one machine-readable JSON
//                  object on stdout.
//   --trace=FILE   record a trace of the run: construction spans,
//                  exploration batches, minterm splits, and individual
//                  solver checks.  FILE ending in ".jsonl" streams one
//                  JSON event per line (flushed per event); any other
//                  extension writes a Chrome trace-event JSON array
//                  loadable in Perfetto / chrome://tracing.
//   --explain      record provenance and print an annotated derivation for
//                  every failing assertion's witness: the witness tree,
//                  the engine state that accepted each node, the attribute
//                  model the solver chose, and citations of the `lang` /
//                  `trans` rules (file:line:col) the fired rule descends
//                  from.  Also reports declared rules that never fired as
//                  dead-rule warnings.
//   --report=FILE  write a single-file HTML session report embedding the
//                  span timeline, stats and latency percentiles, the
//                  slow-query log, rule coverage, and every explained
//                  witness (implies provenance recording).
//   --progress[=MS] print a heartbeat line to stderr while long
//                  explorations run (states explored, frontier,
//                  states/sec); MS overrides the heartbeat cadence in
//                  milliseconds (0 = every exploration step).
//   --export NAME  print the named language/transformation as a
//                  standalone, recompilable Fast program.
//   -j N           evaluate assertions in parallel over N worker threads
//                  (0 = one per hardware thread).  Declarations still
//                  compile sequentially in program order — though large
//                  normalize/determinize fixpoints inside them use N
//                  solver lanes to pre-warm the session's verdict cache —
//                  then the session is frozen and each assertion runs in
//                  a worker context.  Verdicts, diagnostics, witness
//                  text, and every constructed automaton are identical
//                  across -j values.
//
//===----------------------------------------------------------------------===//

#include "fast/Explain.h"
#include "fast/Export.h"
#include "fast/Fast.h"
#include "obs/Report.h"
#include "transducers/Parallel.h"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace fast;

int main(int Argc, char **Argv) {
  bool Dump = false;
  bool Stats = false;
  bool StatsJson = false;
  bool Progress = false;
  bool Explain = false;
  long ProgressMs = -1;
  const char *TracePath = nullptr;
  const char *ReportPath = nullptr;
  const char *ExportName = nullptr;
  const char *Path = nullptr;
  long Jobs = -1; // -1 = sequential (no -j); 0 = one per hardware thread.
  bool Bad = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--dump") == 0)
      Dump = true;
    else if (std::strcmp(Argv[I], "--stats") == 0)
      Stats = true;
    else if (std::strcmp(Argv[I], "--stats-json") == 0)
      StatsJson = true;
    else if (std::strcmp(Argv[I], "--progress") == 0)
      Progress = true;
    else if (std::strncmp(Argv[I], "--progress=", 11) == 0) {
      Progress = true;
      char *End = nullptr;
      ProgressMs = std::strtol(Argv[I] + 11, &End, 10);
      if (End == Argv[I] + 11 || *End != '\0' || ProgressMs < 0)
        Bad = true;
    } else if (std::strcmp(Argv[I], "--explain") == 0)
      Explain = true;
    else if (std::strncmp(Argv[I], "--report=", 9) == 0)
      ReportPath = Argv[I] + 9;
    else if (std::strncmp(Argv[I], "--trace=", 8) == 0)
      TracePath = Argv[I] + 8;
    else if (std::strcmp(Argv[I], "--export") == 0 && I + 1 < Argc)
      ExportName = Argv[++I];
    else if (std::strcmp(Argv[I], "-j") == 0 && I + 1 < Argc) {
      char *End = nullptr;
      Jobs = std::strtol(Argv[I + 1], &End, 10);
      if (End == Argv[I + 1] || *End != '\0' || Jobs < 0)
        Bad = true;
      ++I;
    }
    else if (!Path)
      Path = Argv[I];
    else
      Bad = true;
  }
  if (!Path || Bad) {
    std::cerr << "usage: fastc [--dump] [--stats] [--stats-json] "
                 "[--trace=FILE] [--explain] [--report=FILE] "
                 "[--progress[=MS]] [--export NAME] [-j N] <program.fast>\n";
    return 2;
  }
  std::ifstream File(Path);
  if (!File) {
    std::cerr << "fastc: cannot open '" << Path << "'\n";
    return 2;
  }
  std::stringstream Buffer;
  Buffer << File.rdbuf();

  Session S;
  // The report embeds the span timeline, so it always captures events in
  // memory; with --trace too, a tee writes the file alongside.
  std::shared_ptr<std::vector<std::string>> ReportEvents;
  if (ReportPath) {
    auto Memory = std::make_unique<obs::MemoryTraceSink>();
    ReportEvents = Memory->storage();
    if (TracePath) {
      std::unique_ptr<obs::TraceSink> FileSink =
          obs::makeFileTraceSink(TracePath);
      if (!FileSink) {
        std::cerr << "fastc: cannot open trace file '" << TracePath << "'\n";
        return 2;
      }
      S.tracer().setSink(std::make_unique<obs::TeeTraceSink>(
          std::move(FileSink), std::move(Memory)));
    } else {
      S.tracer().setSink(std::move(Memory));
    }
  } else if (TracePath && !S.tracer().openTrace(TracePath)) {
    std::cerr << "fastc: cannot open trace file '" << TracePath << "'\n";
    return 2;
  }
  if (Progress)
    S.tracer().setProgressStream(&std::cerr);
  if (ProgressMs >= 0)
    S.tracer().ProgressIntervalMs = static_cast<unsigned>(ProgressMs);
  if (Explain || ReportPath)
    S.provenance().setEnabled(true);

  FastRunOptions RunOpts;
  if (Jobs >= 0)
    RunOpts.Threads = Jobs == 0 ? hardwareThreads() : static_cast<unsigned>(Jobs);
  FastProgramResult R = runFastProgram(S, Buffer.str(), RunOpts);
  if (TracePath || ReportPath)
    S.tracer().closeTrace();
  if (!R.DiagText.empty())
    std::cerr << R.DiagText;
  if (R.ErrorCount != 0)
    return 1;

  if (ExportName) {
    auto It = R.Values.find(ExportName);
    if (It == R.Values.end()) {
      std::cerr << "fastc: no language or transformation named '"
                << ExportName << "'\n";
      return 2;
    }
    if (It->second.K == FastValue::Kind::Lang)
      std::cout << exportLanguageProgram(ExportName, It->second.Lang);
    else if (It->second.K == FastValue::Kind::Trans)
      std::cout << exportSttrProgram(ExportName, *It->second.Trans);
    else
      std::cout << It->second.Tree->str() << "\n";
    return 0;
  }

  if (Dump) {
    for (const auto &[Name, V] : R.Values) {
      if (V.K == FastValue::Kind::Lang) {
        std::cout << "--- language " << Name << " (roots:";
        for (unsigned Root : V.Lang.roots())
          std::cout << ' ' << V.Lang.automaton().stateName(Root);
        std::cout << ") ---\n" << V.Lang.automaton().str();
      } else if (V.K == FastValue::Kind::Trans) {
        std::cout << "--- transformation " << Name << " ---\n"
                  << V.Trans->str();
        if (V.Trans->lookahead().numStates() != 0)
          std::cout << "lookahead " << V.Trans->lookahead().str();
      } else if (V.K == FastValue::Kind::Tree) {
        std::cout << "--- tree " << Name << " ---\n"
                  << V.Tree->str() << "\n";
      }
    }
  }

  for (const AssertionOutcome &A : R.Assertions) {
    std::cout << Path << ":" << A.Loc.str() << ": assert-"
              << (A.Expected ? "true" : "false") << " "
              << (A.passed() ? "PASSED" : "FAILED");
    if (!A.passed() && !A.Detail.empty())
      std::cout << "  [" << A.Detail << "]";
    std::cout << "\n";
    if (Explain && !A.passed() && A.Explanation)
      std::cout << renderExplanation(S.provenance(), *A.Explanation, Path);
  }
  unsigned Failed = R.failedAssertions();
  std::cout << R.Assertions.size() << " assertion(s), " << Failed
            << " failed\n";
  if (Stats) {
    std::cout << S.stats().report();
    const Solver::Stats &Q = S.Solv.stats();
    std::cout << "solver: " << Q.Queries << " queries, " << Q.CacheHits
              << " cache-hits, " << Q.CoreChecks << " core-checks, "
              << Q.Z3Checks << " z3-checks, " << Q.FastPathAnswers
              << " fast-path, " << Q.ScopedChecks << " scoped-checks, "
              << Q.LiteralsAsserted << " literals-asserted, "
              << Q.SubsumptionAnswers << " subsumption-answers\n";
    std::cout << S.tracer().slowQueries().report();
  }
  if (StatsJson)
    std::cout << S.stats().json() << "\n";

  if (ReportPath) {
    obs::ReportBuilder Report;
    Report.setTitle(std::string("fast session report: ") + Path);
    Report.setStatsJson(S.stats().json());
    Report.setCoverageJson(S.provenance().coverageJson());
    if (ReportEvents)
      Report.setEvents(*ReportEvents);
    Report.setSlowQueryText(S.tracer().slowQueries().report());
    for (const AssertionOutcome &A : R.Assertions) {
      Report.addAssertion(std::string(Path) + ":" + A.Loc.str(), A.Expected,
                          A.passed(), A.Detail);
      if (!A.passed() && A.Explanation)
        Report.addWitness("assert at " + std::string(Path) + ":" +
                              A.Loc.str(),
                          renderExplanation(S.provenance(), *A.Explanation,
                                            Path));
    }
    std::ofstream Out(ReportPath, std::ios::trunc);
    if (!Out) {
      std::cerr << "fastc: cannot open report file '" << ReportPath << "'\n";
      return 2;
    }
    Out << Report.html();
  }
  return Failed == 0 ? 0 : 1;
}
