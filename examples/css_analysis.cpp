//===- examples/css_analysis.cpp - Black-on-black CSS checking ------------===//
//
// The Section 5.5 sketch: compile CSS rules to transducers, compose the
// cascade, and decide whether any document ends up with unreadable
// (color == background) text -- a relation between attributes that needs
// the symbolic alphabet.
//
// Build & run:  ./build/examples/css_analysis
//
//===----------------------------------------------------------------------===//

#include "apps/Css.h"
#include "transducers/Run.h"

#include <iostream>

using namespace fast;

namespace {

void analyze(Session &S, const SignatureRef &Sig, const char *Name,
             const std::vector<css::CssRule> &Rules) {
  std::cout << "stylesheet " << Name << ":\n";
  for (const css::CssRule &R : Rules) {
    std::cout << "  ";
    for (const std::string &Part : R.SelectorPath)
      std::cout << Part << ' ';
    std::cout << "{ "
              << (R.Prop == css::CssProp::Color ? "color" : "background-color")
              << ": " << R.Value << "; }\n";
  }
  std::shared_ptr<Sttr> Sheet = css::compileStylesheet(S, Sig, Rules);
  std::cout << "  compiled cascade: " << Sheet->numStates() << " states, "
            << Sheet->numRules() << " rules\n";
  if (std::optional<TreeRef> W = css::findUnreadableInput(S, *Sheet)) {
    std::cout << "  UNREADABLE text possible; witness document:\n    "
              << (*W)->str() << "\n";
    std::vector<TreeRef> Styled = runSttr(*Sheet, S.Trees, *W);
    std::cout << "  styled: " << Styled.front()->str() << "\n\n";
  } else {
    std::cout << "  readable on every document\n\n";
  }
}

} // namespace

int main() {
  Session S;
  SignatureRef Sig = css::cssSignature();

  // Stylesheets in actual CSS text, parsed into rules.
  const char *BadSheet = "/* black on black inside divs */\n"
                         "p { color: black; }\n"
                         "div p { background-color: #000; }\n";
  const char *OverrideSheet = "p { color: black; }\n"
                              "div p { background-color: #000; }\n"
                              "div p { color: #ffffff; }\n";
  for (const auto &[Name, Text] :
       {std::pair("bad", BadSheet), std::pair("bad-with-override",
                                              OverrideSheet)}) {
    std::vector<css::CssRule> Rules;
    std::string Error;
    if (!css::parseCss(Text, Rules, Error)) {
      std::cerr << "CSS parse error: " << Error << "\n";
      return 1;
    }
    analyze(S, Sig, Name, Rules);
  }
  return 0;
}
