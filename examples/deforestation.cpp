//===- examples/deforestation.cpp - Fusing a functional pipeline ----------===//
//
// The Section 5.3/5.4 scenario: run the Figure 8 program through the Fast
// frontend, fuse pipelines by composition, compare against naive
// evaluation, and statically prove that map-filter-map-filter deletes
// every element.
//
// Build & run:  ./build/examples/deforestation
//
//===----------------------------------------------------------------------===//

#include "apps/Deforestation.h"
#include "fast/Fast.h"

#include <chrono>
#include <iostream>

using namespace fast;

int main() {
  Session S;

  std::cout << "== The Figure 8 program through the Fast frontend ==\n";
  const char *Source =
      "type IList[i : Int] { nil(0), cons(1) }\n"
      "trans map_caesar : IList -> IList {\n"
      "  nil() to (nil [0])\n"
      "| cons(y) to (cons [(i + 5) % 26] (map_caesar y)) }\n"
      "trans filter_ev : IList -> IList {\n"
      "  nil() to (nil [0])\n"
      "| cons(y) where (i % 2 = 0) to (cons [i] (filter_ev y))\n"
      "| cons(y) where !(i % 2 = 0) to (filter_ev y) }\n"
      "lang not_emp_list : IList { cons(x) }\n"
      "def comp : IList -> IList := (compose map_caesar filter_ev)\n"
      "def comp2 : IList -> IList := (compose comp comp)\n"
      "def restr : IList -> IList := (restrict-out comp2 not_emp_list)\n"
      "assert-true (is-empty restr)\n";
  FastProgramResult R = runFastProgram(S, Source);
  std::cout << R.DiagText;
  for (const AssertionOutcome &A : R.Assertions)
    std::cout << "assertion at " << A.Loc.str() << ": "
              << (A.passed() ? "PASSED" : "FAILED")
              << " (comp2 can never output a non-empty list)\n";

  std::cout << "\n== Deforestation: compose once, traverse once ==\n";
  SignatureRef Sig = defo::listSignature();
  TreeRef Input = defo::randomList(S, Sig, 4096, /*Seed=*/7);

  for (unsigned N : {16u, 64u, 256u}) {
    std::vector<std::shared_ptr<Sttr>> Pipeline;
    for (unsigned I = 0; I < N; ++I)
      Pipeline.push_back(defo::makeMapCaesar(S, Sig));

    auto T0 = std::chrono::steady_clock::now();
    TreeRef Naive = defo::runNaive(S, Pipeline, Input);
    auto T1 = std::chrono::steady_clock::now();
    // Fusion happens once, offline; evaluation then traverses once.
    std::shared_ptr<Sttr> Fused = defo::composePipeline(S, Pipeline);
    auto T2 = std::chrono::steady_clock::now();
    TreeRef FusedOut = defo::runComposed(S, *Fused, Input);
    auto T3 = std::chrono::steady_clock::now();

    double NaiveMs =
        std::chrono::duration<double, std::milli>(T1 - T0).count();
    double ComposeMs =
        std::chrono::duration<double, std::milli>(T2 - T1).count();
    double FusedMs =
        std::chrono::duration<double, std::milli>(T3 - T2).count();
    std::cout << N << " composed maps over 4096 elements: naive " << NaiveMs
              << " ms; fused run " << FusedMs << " ms (one-time fusion "
              << ComposeMs << " ms, " << Fused->numRules()
              << " rules); results "
              << (Naive == FusedOut ? "agree" : "DIFFER") << "\n";
  }
  return 0;
}
