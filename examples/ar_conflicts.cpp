//===- examples/ar_conflicts.cpp - AR tagger conflict checking ------------===//
//
// The Section 5.2 scenario: generate a handful of taggers, run the
// four-step conflict check on every pair, and report which pairs an app
// store should flag.
//
// Build & run:  ./build/examples/ar_conflicts [num_taggers] [seed]
//
//===----------------------------------------------------------------------===//

#include "apps/ArTaggers.h"

#include <cstdlib>
#include <iostream>

using namespace fast;

int main(int Argc, char **Argv) {
  unsigned NumTaggers = Argc > 1 ? std::atoi(Argv[1]) : 8;
  unsigned Seed = Argc > 2 ? std::atoi(Argv[2]) : 42;

  Session S;
  ar::ArOptions Options;
  Options.NumTaggers = NumTaggers;
  ar::ArWorkload W = ar::generateArWorkload(S, Seed, Options);
  std::cout << "generated " << W.Taggers.size()
            << " taggers (sizes: " << W.Taggers.front()->numStates();
  for (size_t I = 1; I < W.Taggers.size(); ++I)
    std::cout << ", " << W.Taggers[I]->numStates();
  std::cout << " states)\n\n";

  unsigned Conflicts = 0, Pairs = 0;
  double TotalMs = 0;
  for (unsigned I = 0; I < W.Taggers.size(); ++I) {
    for (unsigned J = I + 1; J < W.Taggers.size(); ++J) {
      ar::ConflictCheck C = ar::checkConflict(S, W, I, J);
      ++Pairs;
      double Ms = C.ComposeMs + C.InputRestrictMs + C.OutputRestrictMs +
                  C.EmptinessMs;
      TotalMs += Ms;
      if (C.Conflict) {
        ++Conflicts;
        std::cout << "CONFLICT: tagger " << I << " and tagger " << J
                  << "  (checked in " << Ms << " ms: compose "
                  << C.ComposeMs << ", restrict-in " << C.InputRestrictMs
                  << ", restrict-out " << C.OutputRestrictMs
                  << ", emptiness " << C.EmptinessMs << ")\n";
      }
    }
  }
  std::cout << "\n" << Pairs << " pairs checked, " << Conflicts
            << " conflicts, average " << TotalMs / Pairs << " ms per pair\n";
  return 0;
}
