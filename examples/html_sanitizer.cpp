//===- examples/html_sanitizer.cpp - The Section 2 walkthrough ------------===//
//
// Reproduces the paper's motivating example end to end: write the
// sanitizer in Fast, find the remScript bug via pre-image analysis, show
// the counterexample, fix the bug, verify, and sanitize a real document.
//
// Build & run:  ./build/examples/html_sanitizer
//
//===----------------------------------------------------------------------===//

#include "apps/Html.h"
#include "transducers/Run.h"

#include <iostream>

using namespace fast;

int main() {
  Session S;

  std::cout << "== The Figure 2 sanitizer, as written (with the bug) ==\n";
  html::Sanitizer Buggy = html::buildSanitizer(S, /*FixBug=*/false);

  // bad_inputs := pre-image sani badOutput  (Figure 2 line 38).
  TreeLanguage BadInputs =
      preImageLanguage(S.Solv, *Buggy.Sani, Buggy.BadOutput);
  if (std::optional<TreeRef> W = witness(S.Solv, BadInputs, S.Trees)) {
    std::cout << "assert-true (is-empty bad_inputs) FAILS.\n"
              << "counterexample input:\n  " << (*W)->str() << "\n";
    std::vector<TreeRef> Out = runSttr(*Buggy.Sani, S.Trees, *W);
    std::cout << "sanitized output still contains a script node:\n  "
              << Out.front()->str() << "\n";
    std::cout << "(the paper's diagnosis: line 18 forgets to recurse on "
                 "x3, so a script\n hiding in a script's next-sibling slot "
                 "survives)\n\n";
  }

  std::cout << "== After the fix: remScript recurses on x3 ==\n";
  html::Sanitizer Fixed = html::buildSanitizer(S, /*FixBug=*/true);
  TreeLanguage BadInputsFixed =
      preImageLanguage(S.Solv, *Fixed.Sani, Fixed.BadOutput);
  std::cout << "assert-true (is-empty bad_inputs) "
            << (isEmptyLanguage(S.Solv, BadInputsFixed) ? "PASSES"
                                                        : "still fails")
            << ".\n\n";

  std::cout << "== Sanitizing the Figure 3 document ==\n";
  const std::string Html =
      "<div id='e\"'><script>a</script></div><br />";
  std::cout << "input HTML:      " << Html << "\n";
  std::string Error;
  TreeRef Doc = html::parseHtml(S, Fixed.Sig, Html, Error);
  if (!Doc) {
    std::cerr << "parse error: " << Error << "\n";
    return 1;
  }
  std::cout << "HtmlE encoding:  " << Doc->str() << "\n";
  std::vector<TreeRef> Out = runSttr(*Fixed.Sani, S.Trees, Doc);
  std::cout << "sanitized HTML:  " << html::renderHtml(Out.front()) << "\n";
  return 0;
}
