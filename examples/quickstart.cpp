//===- examples/quickstart.cpp - First steps with the library -------------===//
//
// Builds a tree type, a language, and a transducer through the C++ API,
// runs the transducer, composes it with itself, and uses the decision
// procedures: the whole public surface in ~100 lines.
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "automata/Determinize.h"
#include "transducers/Ops.h"
#include "transducers/Run.h"
#include "transducers/Session.h"

#include <iostream>

using namespace fast;

int main() {
  // Every analysis shares one Session: the term/tree/output factories and
  // the Z3-backed solver.
  Session S;

  // type BT [i : Int] { L(0), N(2) } -- binary trees with an int label.
  SignatureRef BT =
      TreeSignature::create("BT", {{"i", Sort::Int}}, {{"L", 0}, {"N", 2}});
  unsigned L = *BT->findConstructor("L");
  unsigned N = *BT->findConstructor("N");
  TermRef I = BT->attrTerm(S.Terms, 0); // the attribute `i` as a term

  // A concrete tree: N[1](L[2], L[5]).
  TreeRef Leaf2 = S.Trees.makeLeaf(BT, L, {Value::integer(2)});
  TreeRef Leaf5 = S.Trees.makeLeaf(BT, L, {Value::integer(5)});
  TreeRef Tree = S.Trees.make(BT, N, {Value::integer(1)}, {Leaf2, Leaf5});
  std::cout << "input tree:  " << Tree->str() << "\n";

  // lang positive : BT -- every label is positive.
  auto A = std::make_shared<Sta>(BT);
  unsigned P = A->addState("positive");
  TermRef Pos = S.Terms.mkGt(I, S.Terms.intConst(0));
  A->addRule(P, L, Pos, {});
  A->addRule(P, N, Pos, {{P}, {P}});
  TreeLanguage Positive(A, P);
  std::cout << "tree all-positive? " << (Positive.contains(Tree) ? "yes" : "no")
            << "\n";

  // trans double : BT -> BT -- doubles every label.
  auto Doubler = std::make_shared<Sttr>(BT);
  unsigned Q = Doubler->addState("double");
  Doubler->setStartState(Q);
  TermRef Twice = S.Terms.mkMul(I, S.Terms.intConst(2));
  Doubler->addRule(Q, L, S.Terms.trueTerm(), {},
                   S.Outputs.mkCons(L, {Twice}, {}));
  Doubler->addRule(Q, N, S.Terms.trueTerm(), {{}, {}},
                   S.Outputs.mkCons(N, {Twice},
                                    {S.Outputs.mkState(Q, 0),
                                     S.Outputs.mkState(Q, 1)}));

  // Run it.
  std::vector<TreeRef> Out = runSttr(*Doubler, S.Trees, Tree);
  std::cout << "doubled:     " << Out.front()->str() << "\n";

  // Compose it with itself: one transducer that quadruples.
  ComposeResult Quad = composeSttr(S.Solv, S.Outputs, *Doubler, *Doubler);
  std::cout << "composition exact? " << (Quad.isExact() ? "yes" : "no")
            << "\n";
  std::cout << "quadrupled:  "
            << runSttr(*Quad.Composed, S.Trees, Tree).front()->str() << "\n";

  // Static analysis: doubling a positive tree keeps it positive...
  bool Preserves = typeCheck(S.Solv, Positive, *Doubler, Positive);
  std::cout << "double preserves positivity? " << (Preserves ? "yes" : "no")
            << "\n";

  // ...and the pre-image of "some label is odd" under doubling is empty.
  auto B = std::make_shared<Sta>(BT);
  unsigned O = B->addState("someOdd");
  TermRef Odd = S.Terms.mkEq(S.Terms.mkMod(I, S.Terms.intConst(2)),
                             S.Terms.intConst(1));
  B->addRule(O, L, Odd, {});
  B->addRule(O, N, Odd, {{}, {}});
  B->addRule(O, N, S.Terms.trueTerm(), {{O}, {}});
  B->addRule(O, N, S.Terms.trueTerm(), {{}, {O}});
  TreeLanguage SomeOdd(B, O);
  TreeLanguage BadInputs = preImageLanguage(S.Solv, *Doubler, SomeOdd);
  std::cout << "can doubling produce an odd label? "
            << (isEmptyLanguage(S.Solv, BadInputs) ? "no" : "yes") << "\n";

  // Witness generation: a tree that IS in `SomeOdd`.
  if (std::optional<TreeRef> W = witness(S.Solv, SomeOdd, S.Trees))
    std::cout << "a tree with an odd label: " << (*W)->str() << "\n";

  return 0;
}
